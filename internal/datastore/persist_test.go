package datastore

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"campuslab/internal/eventlog"
	"campuslab/internal/traffic"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	st := fillStore(t)
	evs := eventlog.NewGenerator(eventlog.GeneratorConfig{Source: eventlog.SourceIDS, Rate: 5, Seed: 1}).Generate(4 * time.Second)
	st.AddEvents(evs)

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := st.Stats(), got.Stats()
	if a.Packets != b.Packets || a.Flows != b.Flows || a.Events != b.Events || a.DataBytes != b.DataBytes {
		t.Fatalf("stats mismatch: %+v vs %+v", a, b)
	}
	// Ground truth survives: label counts identical.
	ac, bc := st.LabelCounts(), got.LabelCounts()
	for l, n := range ac {
		if bc[l] != n {
			t.Errorf("label %v: %d vs %d", l, bc[l], n)
		}
	}
	// Query results identical.
	f := MustFilter("dns && dns.qtype == ANY")
	if st.Count(f) != got.Count(f) {
		t.Errorf("query counts differ: %d vs %d", st.Count(f), got.Count(f))
	}
	// Packet bytes identical in order.
	orig := st.PacketsBetween(0, 1<<62)
	loaded := got.PacketsBetween(0, 1<<62)
	if len(orig) != len(loaded) {
		t.Fatal("packet counts differ")
	}
	for i := range orig {
		if !bytes.Equal(orig[i].Data, loaded[i].Data) || orig[i].TS != loaded[i].TS {
			t.Fatalf("packet %d differs", i)
		}
		if orig[i].Label != loaded[i].Label || orig[i].Actor != loaded[i].Actor {
			t.Fatalf("packet %d ground truth lost", i)
		}
	}
	// Events identical.
	oe, le := st.EventsBetween(0, 1<<62), got.EventsBetween(0, 1<<62)
	for i := range oe {
		if oe[i].TS != le[i].TS || oe[i].Message != le[i].Message || oe[i].Host != le[i].Host {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a snapshot at all........"),
		append([]byte("CLDS"), make([]byte, 18)...), // version 0
	}
	for i, data := range cases {
		if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("case %d: want ErrBadSnapshot, got %v", i, err)
		}
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	st := fillStore(t)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{30, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("cut at %d: want ErrBadSnapshot, got %v", cut, err)
		}
	}
}

func TestLoadRejectsAbsurdLengths(t *testing.T) {
	// Header claiming one packet with a 100 MiB body.
	var buf bytes.Buffer
	buf.WriteString("CLDS")
	buf.Write([]byte{1, 0})                   // version
	buf.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0}) // 1 packet
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // 0 events
	buf.Write(make([]byte, 12))               // packet header
	buf.Write([]byte{0, 0, 0, 0x40})          // len = 1 GiB-ish
	if _, err := Load(&buf); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("want ErrBadSnapshot, got %v", err)
	}
}

func TestSaveLoadEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats().Packets != 0 {
		t.Error("empty store not empty after round trip")
	}
}

func TestSaveLoadPropertySmall(t *testing.T) {
	// Property: any batch of tiny synthetic frames survives a round trip.
	fn := func(payloads [][]byte) bool {
		st := New()
		for i, p := range payloads {
			if len(p) > 512 {
				p = p[:512]
			}
			f := traffic.Frame{TS: time.Duration(i) * time.Millisecond, Data: p}
			st.IngestFrame(&f)
		}
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		return got.Stats().Packets == st.Stats().Packets &&
			got.Stats().DataBytes == st.Stats().DataBytes
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSave(b *testing.B) {
	st := fillStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkLoad(b *testing.B) {
	st := fillStore(b)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
