package datastore

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"campuslab/internal/traffic"
)

// A durable store couples the in-memory sharded store with a snapshot file
// and a write-ahead log in one directory:
//
//	<dir>/snapshot-<seq>.clds   the newest checkpoint (v2 snapshot format;
//	                            v3 once a cold tier is attached)
//	<dir>/<seq>.wal             segments holding every acked batch since
//
// Recover rebuilds the store as snapshot ⊕ WAL replay; CheckpointDir
// writes a fresh snapshot and truncates the log. Between checkpoints,
// every acked AddBatch is WAL-logged before its PacketID is returned, so a
// hard kill at any instant loses nothing that was acknowledged (under
// FsyncAlways; weaker policies trade the power-loss window for speed —
// see FsyncPolicy).
//
// The <seq> stamped into the snapshot name is the WAL segment sequence the
// snapshot covers: the checkpoint's single atomic rename publishes the
// data and the coverage watermark together, and Recover replays only
// segments newer than the stamp. Without the stamp, a crash between the
// snapshot rename and the end of truncation would leave already-covered
// segments on disk and the next recovery would replay every acked batch
// since the previous checkpoint twice.

// SnapshotName is the legacy (pre-watermark) checkpoint file name. Recover
// still reads it — as covering no WAL segment — from directories written
// before checkpoints were coverage-stamped.
const SnapshotName = "snapshot.clds"

// snapSuffix ends every checkpoint file name, stamped or legacy.
const snapSuffix = ".clds"

// snapName formats a coverage-stamped checkpoint name; names sort in
// coverage order.
func snapName(covered uint64) string {
	return fmt.Sprintf("snapshot-%016x%s", covered, snapSuffix)
}

// parseSnapName inverts snapName; ok=false for legacy and foreign files.
func parseSnapName(name string) (uint64, bool) {
	const prefix = "snapshot-"
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), snapSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	covered, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return covered, true
}

// findSnapshot picks the checkpoint Recover loads: the stamped snapshot
// with the highest covered sequence wins (an interrupted checkpoint can
// leave older ones behind); a legacy bare snapshot.clds is used only when
// no stamped one exists, covering nothing.
func findSnapshot(dir string) (path string, covered uint64, ok bool, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, false, err
	}
	found := false
	for _, e := range ents {
		if c, stamped := parseSnapName(e.Name()); stamped && (!found || c > covered) {
			covered, found = c, true
		}
	}
	if found {
		return filepath.Join(dir, snapName(covered)), covered, true, nil
	}
	legacy := filepath.Join(dir, SnapshotName)
	if _, serr := os.Stat(legacy); serr == nil {
		return legacy, 0, true, nil
	}
	return "", 0, false, nil
}

// DurableConfig parameterizes a durable store directory.
type DurableConfig struct {
	// Dir is the durability root (snapshot + WAL segments).
	Dir string
	// Fsync is the WAL durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// SyncEvery / SegmentBytes: see WALConfig.
	SyncEvery    int
	SegmentBytes int64
	// Shards fixes the recovered store's shard count (0 = auto).
	Shards int
	// Workers bounds replay parse fan-out (0 = GOMAXPROCS).
	Workers int
	// Tier, when Tier.Dir is non-empty, attaches the cold tier after WAL
	// replay: sealed segments are re-registered, hot rows at or below the
	// seal watermark (re-ingested by replay) are trimmed so nothing is
	// duplicated, and subsequent ingest spills to Tier.Dir per the policy.
	Tier TierPolicy
}

// RecoveryStats reports what Recover rebuilt.
type RecoveryStats struct {
	// SnapshotPackets came from the checkpoint (0 when none existed).
	SnapshotPackets uint64
	// WALRecords / WALPackets were replayed from the log on top.
	WALRecords, WALPackets uint64
	// Torn reports that replay stopped early at a torn tail or corrupt
	// frame; everything before the stop point was applied.
	Torn bool
}

// Recover opens (or initializes) the durable directory: stale snapshot
// temp files are swept, the newest snapshot is loaded, the WAL is replayed
// on top — stopping cleanly at a torn tail — and a fresh log segment is
// attached for new writes. The returned store acknowledges every
// subsequent batch through the WAL.
func Recover(cfg DurableConfig) (*Store, RecoveryStats, error) {
	var rs RecoveryStats
	if cfg.Dir == "" {
		return nil, rs, fmt.Errorf("datastore: recover: Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, rs, fmt.Errorf("datastore: recover: %w", err)
	}
	RemoveStaleTemps(cfg.Dir, "snapshot*"+snapSuffix)

	snapPath, covered, haveSnap, err := findSnapshot(cfg.Dir)
	if err != nil {
		return nil, rs, fmt.Errorf("datastore: recover: %w", err)
	}
	var st *Store
	if haveSnap {
		st, err = LoadFile(snapPath)
		if err != nil {
			// SaveFile publishes snapshots atomically, so a corrupt
			// snapshot is real damage, not a crash artifact: refuse to
			// guess rather than silently drop checkpointed data.
			return nil, rs, fmt.Errorf("datastore: recover snapshot: %w", err)
		}
		if cfg.Shards > 0 && st.NumShards() != ceilPow2(cfg.Shards) {
			st = reshard(st, cfg.Shards)
		}
		rs.SnapshotPackets = st.Stats().Packets
	} else {
		st = NewSharded(cfg.Shards)
	}

	var walBytes uint64
	records, clean, err := ReplayWALFrom(cfg.Dir, covered, func(frames []traffic.Frame, links []uint16) {
		st.addBatch(frames, links, cfg.Workers)
		rs.WALPackets += uint64(len(frames))
		for i := range frames {
			walBytes += uint64(len(frames[i].Data))
		}
	})
	if err != nil {
		return nil, rs, err
	}
	rs.WALRecords = records
	rs.Torn = !clean

	// Attach the cold tier after replay and before the WAL reopens: replay
	// re-ingested every acked batch since the checkpoint, including rows
	// that a pre-crash seal already moved into segments; EnableTiering
	// trims the hot tier below the manifest's watermark so those rows are
	// served from cold storage exactly once. Attaching before OpenWAL also
	// means a torn-log checkpoint below writes the tiered snapshot format.
	if cfg.Tier.Dir != "" {
		if err := st.EnableTiering(cfg.Tier); err != nil {
			return nil, rs, fmt.Errorf("datastore: recover tier: %w", err)
		}
	}

	w, err := OpenWAL(WALConfig{
		Dir: cfg.Dir, Fsync: cfg.Fsync,
		SyncEvery: cfg.SyncEvery, SegmentBytes: cfg.SegmentBytes,
		StartSeq: covered + 1,
	})
	if err != nil {
		return nil, rs, err
	}
	// The replayed-but-not-checkpointed records still count as WAL lag:
	// they are only covered once the next checkpoint lands.
	w.records = records
	w.bytes = walBytes
	st.AttachWAL(w)
	if !clean {
		// Seal a torn log immediately: the damaged segment stays on disk
		// until a checkpoint covers it, and a LATER recovery would stop at
		// the old tear and discard acked batches appended after it. A
		// fresh snapshot + truncation makes the recovered prefix the new
		// ground truth before any new write is acknowledged.
		if err := st.CheckpointDir(cfg.Dir); err != nil {
			st.CloseWAL()
			return nil, rs, fmt.Errorf("datastore: recover: sealing torn wal: %w", err)
		}
	}
	return st, rs, nil
}

// reshard rebuilds a loaded store under a different shard count by
// streaming its packets (global order) through a fresh store's ingest.
// The ID sequence is seeded at the source's smallest live ID: when the
// live IDs are contiguous (always true for tiered stores, whose eviction
// is seal-based) every packet keeps its original ID, which cold segments
// reference and recovery must therefore not renumber.
func reshard(st *Store, shards int) *Store {
	out := NewSharded(shards)
	base := st.nextID.Load()
	for _, sh := range st.shards {
		if len(sh.packets) > 0 && uint64(sh.packets[0].ID) < base {
			base = uint64(sh.packets[0].ID)
		}
	}
	out.nextID.Store(base)
	st.Scan(func(sp *StoredPacket) bool {
		out.ingest(sp.TS, sp.Link, sp.Data, sp.Label, sp.Actor)
		return true
	})
	if out.nextID.Load() == st.nextID.Load() {
		// IDs were preserved exactly, so the source's flow aggregates (which
		// may span cold segments a v3 snapshot overlaid) remain valid —
		// carry them over instead of keeping the hot-only rebuild.
		for _, src := range st.shards {
			for key, fm := range src.flows {
				sh := out.shards[key.Hash()&out.mask]
				if old, ok := sh.flows[key]; ok {
					if d := len(fm.pktIDs) - len(old.pktIDs); d > 0 {
						sh.indexBytes += 8 * uint64(d)
					}
				} else {
					sh.indexBytes += 96 + 8*uint64(len(fm.pktIDs))
				}
				sh.flows[key] = fm
			}
		}
	}
	if lt := st.lastTS.Load(); lt > out.lastTS.Load() {
		out.lastTS.Store(lt)
	}
	s := out
	s.eventsMu.Lock()
	st.eventsMu.RLock()
	s.events = append(s.events, st.events...)
	s.eventIndexBytes = st.eventIndexBytes
	st.eventsMu.RUnlock()
	s.eventsMu.Unlock()
	return out
}

// AttachWAL routes every subsequent acked batch through w: the record is
// durable (per w's fsync policy) before the batch's first PacketID is
// returned. Attach before concurrent ingest begins.
func (s *Store) AttachWAL(w *WAL) {
	s.ingestMu.Lock()
	s.wal.Store(w)
	s.ingestMu.Unlock()
}

// WALStats describes the attached log (zero value when none).
type WALStats struct {
	// Attached reports whether a WAL is wired in.
	Attached bool
	// Records / Bytes are the appended-but-not-checkpointed backlog —
	// the "WAL lag" healthz reports: how much replay a crash right now
	// would cost.
	Records, Bytes uint64
	// Segments is the live segment-file count.
	Segments int
	// Err is the sticky append/sync failure wedging the log (nil when
	// healthy). Non-nil means new data is NOT crash-safe.
	Err error
}

// WALStats snapshots the attached log's lag and health.
func (s *Store) WALStats() WALStats {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	w := s.wal.Load()
	if w == nil {
		return WALStats{}
	}
	return WALStats{
		Attached: true,
		Records:  w.records,
		Bytes:    w.bytes,
		Segments: w.segments,
		Err:      w.err,
	}
}

// FlushWAL syncs unsynced WAL appends to disk (no-op without a WAL) —
// the SIGTERM-drain hook.
func (s *Store) FlushWAL() error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	w := s.wal.Load()
	if w == nil {
		return nil
	}
	return w.Flush()
}

// Checkpoint writes a crash-safe snapshot to path and, when a WAL is
// attached, truncates the log it now covers. Ingest is excluded for the
// duration (the ingest mutex), so no batch can land in the truncated log
// without being in the snapshot — the invariant recovery depends on.
// Without a WAL this is exactly SaveFile.
//
// For a durable directory Recover reads, use CheckpointDir instead: it
// stamps the snapshot with the covered WAL sequence, so a crash between
// the snapshot rename and the end of truncation cannot make recovery
// replay covered segments on top of the snapshot that contains them.
func (s *Store) Checkpoint(path string) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	return s.checkpointLocked(path)
}

// checkpointLocked is Checkpoint under an already-held ingest mutex.
func (s *Store) checkpointLocked(path string) error {
	if err := s.SaveFile(path); err != nil {
		return err
	}
	if w := s.wal.Load(); w != nil {
		return w.Truncate()
	}
	return nil
}

// CheckpointDir checkpoints into the durable directory layout Recover
// reads: the snapshot lands under a name embedding the WAL segment
// sequence it covers (snapName), published together with that watermark
// by SaveFile's one atomic rename, then the covered log is truncated and
// older snapshot files are swept. A crash at any point leaves either the
// previous snapshot plus the full log, or the new snapshot plus only
// newer segments — never a state where recovery replays a record the
// loaded snapshot already contains.
func (s *Store) CheckpointDir(dir string) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	var covered uint64
	if w := s.wal.Load(); w != nil {
		// Every record appended so far lives in a segment <= the live
		// sequence, and the ingest mutex keeps it that way until the
		// snapshot and truncation are done.
		covered = w.seq
	}
	if err := s.checkpointLocked(filepath.Join(dir, snapName(covered))); err != nil {
		return err
	}
	sweepSnapshots(dir, covered)
	return nil
}

// sweepSnapshots removes checkpoint files superseded by the one covering
// `covered` — best effort: Recover always picks the highest stamp, so a
// leftover is garbage on disk, not a recovery hazard.
func sweepSnapshots(dir string, covered uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if c, stamped := parseSnapName(e.Name()); (stamped && c < covered) || e.Name() == SnapshotName {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// CloseWAL flushes and detaches the log (final drain). The store remains
// usable in-memory; subsequent batches are no longer logged.
func (s *Store) CloseWAL() error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	w := s.wal.Load()
	if w == nil {
		return nil
	}
	err := w.Close()
	s.wal.Store(nil)
	return err
}

// RemoveStaleTemps sweeps temp files a killed SaveFile left behind in dir
// (base+".tmp*" — see SaveFile). Only call on directories this package
// owns. Returns how many were removed.
func RemoveStaleTemps(dir, base string) int {
	matches, err := filepath.Glob(filepath.Join(dir, base+".tmp*"))
	if err != nil {
		return 0
	}
	n := 0
	for _, m := range matches {
		if os.Remove(m) == nil {
			n++
		}
	}
	return n
}
