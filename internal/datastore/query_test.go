package datastore

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"campuslab/internal/capture"
	"campuslab/internal/traffic"
)

// queryExprs is the expression mix every equivalence surface in this file
// is checked against: pure-index plans, index+residual plans, ts-bounded
// plans, and plans that must fall back to a scan.
var queryExprs = []string{
	"proto == udp && dst.port == 53",
	"proto == tcp",
	"dst.port == 53",
	"udp && dns",
	"dns && dns.qtype == ANY",
	"ts >= 1s && ts < 2s && udp",
	"ts > 500ms && proto == udp && dst.port == 53",
	"label == dns-amp",
	"label != benign",
	"proto == udp || tcp.syn",
	"!(dns) && len > 100",
	"len > 1000",
	"src.ip in 10.0.0.0/8 && proto == udp",
	"proto == 255",
	"dst.port == 70000",
	"link == 0",
	"icmp",
}

// selectBoth runs one query through the planner and the serial scan
// reference and fails the test unless the results are byte-identical.
func selectBoth(t *testing.T, st *Store, expr string, limit int) []StoredPacket {
	t.Helper()
	f := MustFilter(expr)
	st.SetScanQuery(true)
	want := st.Select(f, limit)
	wantN := st.Count(f)
	st.SetScanQuery(false)
	got := st.Select(f, limit)
	gotN := st.Count(f)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Select(%q, %d): planner diverged from scan reference (want %d pkts, got %d)",
			expr, limit, len(want), len(got))
	}
	if wantN != gotN {
		t.Fatalf("Count(%q): planner %d != reference %d", expr, gotN, wantN)
	}
	return got
}

func TestPlannerExtractsIndexableConjuncts(t *testing.T) {
	cases := []struct {
		expr      string
		indexable bool
		keys      int
		residual  bool
	}{
		{"proto == udp && dst.port == 53", true, 2, false},
		{"proto == udp && dst.port == 53 && len > 100", true, 2, true},
		{"ts >= 1s && proto == udp", true, 1, true}, // ts bound stays residual
		{"dns && dns.resp && udp", true, 3, false},
		{"label == dns-amp", true, 1, false},
		{"link == 3", true, 1, false},
		{"proto != udp", false, 0, false},  // inequality: not indexable
		{"dst.port >= 53", false, 0, false},
		{"proto == udp || dns", false, 0, false}, // top-level OR is opaque
		{"!(proto == udp)", false, 0, false},
		{"len > 100", false, 0, false},
		{"tcp.syn", false, 0, false}, // TCP flag bits have no posting list
	}
	for _, c := range cases {
		f := MustFilter(c.expr)
		if f.Indexable() != c.indexable {
			t.Errorf("%q: indexable = %v, want %v", c.expr, f.Indexable(), c.indexable)
		}
		if len(f.plan.keys) != c.keys {
			t.Errorf("%q: %d index keys, want %d", c.expr, len(f.plan.keys), c.keys)
		}
		if (f.plan.residual != nil) != c.residual {
			t.Errorf("%q: residual = %v, want %v", c.expr, f.plan.residual != nil, c.residual)
		}
	}
}

func TestPlannerMatchesScanReference(t *testing.T) {
	st := fillStore(t)
	hits := 0
	for _, expr := range queryExprs {
		for _, limit := range []int{0, 1, 7} {
			if len(selectBoth(t, st, expr, limit)) > 0 {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Fatal("no expression matched anything — scenario not exercised")
	}
	// The selective DNS query must actually have taken the index path.
	before := obsQueryPlannerIndex.Value()
	st.Select(MustFilter("proto == udp && dst.port == 53"), 0)
	if obsQueryPlannerIndex.Value() != before+1 {
		t.Fatal("selective query did not take the planner's index path")
	}
}

func TestPlannerEquivalenceAcrossShardsAndWorkers(t *testing.T) {
	frames := equivFrames(t)
	for _, shards := range []int{1, 4, 16} {
		st := NewSharded(shards)
		st.AddBatch(frames, 4)
		for _, workers := range []int{1, 4} {
			st.SetQueryWorkers(workers)
			name := fmt.Sprintf("shards=%d/workers=%d", shards, workers)
			for _, expr := range queryExprs {
				selectBoth(t, st, expr, 0)
				selectBoth(t, st, expr, 5)
			}
			// Cross-config: results must also agree across configurations.
			got := st.Select(MustFilter("proto == udp && dst.port == 53"), 0)
			if len(got) == 0 {
				t.Fatalf("%s: selective query found nothing", name)
			}
		}
	}
}

func TestQueryAfterEviction(t *testing.T) {
	st := fillStore(t)
	total := int(st.Stats().Packets)
	evicted := st.EvictBefore(2 * time.Second)
	if evicted == 0 || evicted == total {
		t.Fatalf("eviction did not split the store: %d of %d", evicted, total)
	}
	for _, expr := range queryExprs {
		selectBoth(t, st, expr, 0)
	}
	// The index must not resurrect evicted packets.
	for _, sp := range selectBoth(t, st, "proto == udp && dst.port == 53", 0) {
		if sp.TS < 2*time.Second {
			t.Fatalf("evicted packet %d (ts %v) still visible via index", sp.ID, sp.TS)
		}
	}
}

func TestSnapshotPreservesQueryResults(t *testing.T) {
	st := fillStore(t)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, expr := range queryExprs {
		f := MustFilter(expr)
		want := st.Select(f, 0)
		got := loaded.Select(f, 0)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Select(%q) differs after save→load: %d vs %d packets", expr, len(want), len(got))
		}
		// And the rebuilt indexes must agree with the loaded store's own
		// scan reference, proving they were reconstructed, not inherited.
		selectBoth(t, loaded, expr, 0)
	}
}

func TestAddRecordsIndexesLinks(t *testing.T) {
	frames := equivFrames(t)
	recs := make([]capture.Record, len(frames))
	for i := range frames {
		recs[i] = capture.Record{TS: frames[i].TS, Link: uint16(1 + i%3), Data: frames[i].Data}
	}
	st := NewSharded(4)
	st.AddRecords(recs, 2)
	n := 0
	for _, expr := range []string{"link == 1", "link == 2", "link == 3"} {
		got := selectBoth(t, st, expr, 0)
		n += len(got)
		for i := range got {
			if fmt.Sprintf("link == %d", got[i].Link) != expr {
				t.Fatalf("%q returned packet with link %d", expr, got[i].Link)
			}
		}
	}
	if n != len(recs) {
		t.Fatalf("link queries cover %d of %d records", n, len(recs))
	}
}

func TestFilterCacheSharesCompiledFilters(t *testing.T) {
	const expr = "proto == udp && dst.port == 4053"
	a, err := ParseFilterCached(expr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseFilterCached(expr)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache returned distinct compiled filters for one expression")
	}
	if _, err := ParseFilterCached("proto =="); err == nil {
		t.Fatal("bad expression did not error through the cache")
	}
	// Errors are not cached: the same bad expression errors again.
	if _, err := ParseFilterCached("proto =="); err == nil {
		t.Fatal("bad expression cached as success")
	}
	// SelectExpr and CountExpr ride the same cache.
	st := fillStore(t)
	pkts, err := st.SelectExpr("dns && dns.qtype == ANY", 0)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := st.CountExpr("dns && dns.qtype == ANY")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != cnt {
		t.Fatalf("SelectExpr found %d, CountExpr %d", len(pkts), cnt)
	}
}

func TestFlowsWhereSkipsIDCopy(t *testing.T) {
	st := fillStore(t)
	all := func(*FlowMeta) bool { return true }
	light := st.FlowsWhere(all)
	heavy := st.FlowsWhereIDs(all)
	if len(light) == 0 || len(light) != len(heavy) {
		t.Fatalf("flow listings differ: %d vs %d", len(light), len(heavy))
	}
	for i := range light {
		if light[i].PacketIDs() != nil {
			t.Fatal("FlowsWhere copied packet IDs")
		}
		if uint64(len(heavy[i].PacketIDs())) != heavy[i].Packets {
			t.Fatalf("FlowsWhereIDs: %d ids for %d packets", len(heavy[i].PacketIDs()), heavy[i].Packets)
		}
		// Same flows in the same deterministic order.
		if light[i].Key != heavy[i].Key || light[i].First != heavy[i].First {
			t.Fatalf("flow %d differs between listings", i)
		}
	}
	// Flows() still deep-copies; its IDs must match FlowsWhereIDs.
	flows := st.Flows()
	for i := range flows {
		if !reflect.DeepEqual(flows[i].PacketIDs(), heavy[i].PacketIDs()) {
			t.Fatalf("flow %d: Flows and FlowsWhereIDs disagree", i)
		}
	}
}

func TestLabelCountsParallelDeterminism(t *testing.T) {
	st := fillStore(t)
	st.SetQueryWorkers(1)
	serial := st.LabelCounts()
	st.SetQueryWorkers(4)
	par := st.LabelCounts()
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("LabelCounts differ: %v vs %v", serial, par)
	}
	if serial[traffic.LabelDNSAmp] == 0 {
		t.Fatal("scenario lost its attack flows")
	}
}

// TestConcurrentIngestAndQuery exercises the planner and index state under
// the race detector: writers append batches while readers run indexed and
// scanned queries plus flow listings.
func TestConcurrentIngestAndQuery(t *testing.T) {
	frames := equivFrames(t)
	st := NewSharded(8)
	st.AddBatch(frames[:len(frames)/2], 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := MustFilter(queryExprs[0])
			g := MustFilter("len > 100")
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.Select(f, 0)
				st.Count(g)
				st.FlowsWhere(func(fm *FlowMeta) bool { return fm.Packets > 2 })
				st.LabelCounts()
			}
		}()
	}
	rest := frames[len(frames)/2:]
	for lo := 0; lo < len(rest); lo += 500 {
		hi := lo + 500
		if hi > len(rest) {
			hi = len(rest)
		}
		st.AddBatch(rest[lo:hi], 2)
	}
	close(stop)
	wg.Wait()
	// Steady state: planner and reference agree on the final store.
	for _, expr := range queryExprs {
		selectBoth(t, st, expr, 0)
	}
}

func TestScanQueryEnvKnob(t *testing.T) {
	t.Setenv(ScanQueryEnv, "1")
	st := NewSharded(4)
	if !st.scanQuery.Load() {
		t.Fatal("CAMPUSLAB_SCAN_QUERY did not force the reference path")
	}
	t.Setenv(ScanQueryEnv, "")
	st = NewSharded(4)
	if st.scanQuery.Load() {
		t.Fatal("empty CAMPUSLAB_SCAN_QUERY still forced the reference path")
	}
}
