package datastore

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTierIngestSealQueryRace drives concurrent ingest, automatic and
// manual sealing, compaction, retention and the full query surface against
// one tiered store. It asserts no torn reads (counts never regress, scan
// stays (TS, ID)-sorted with unique IDs) and is primarily a -race gate
// for the tier.mu/shard-lock/sealMu ordering.
func TestTierIngestSealQueryRace(t *testing.T) {
	frames := tierFrames(t)
	if len(frames) > 3000 {
		frames = frames[:3000]
	}
	s := NewSharded(4)
	if err := s.EnableTiering(TierPolicy{
		Dir: t.TempDir(), HotPackets: 1024, KeepFrac: 0.5,
		MinSealPackets: 32, SegmentPackets: 128,
	}); err != nil {
		t.Fatal(err)
	}
	stopCompact := s.StartTierCompactor(2 * time.Millisecond)
	defer stopCompact()

	f, err := ParseFilter("proto == udp && dst.port == 53")
	if err != nil {
		t.Fatal(err)
	}
	var ingested atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // ingester
		defer wg.Done()
		defer close(done)
		for lo := 0; lo < len(frames); {
			hi := lo + 100
			if hi > len(frames) {
				hi = len(frames)
			}
			if _, err := s.AddBatch(frames[lo:hi], 2); err != nil {
				t.Errorf("AddBatch: %v", err)
				return
			}
			ingested.Add(uint64(hi - lo))
			lo = hi
		}
	}()

	wg.Add(1)
	go func() { // manual tier churn racing the automatic trigger
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
			s.SealHot(256)
			s.CompactTier()
		}
	}()

	wg.Add(1)
	go func() { // queries
		defer wg.Done()
		var lastTotal uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			// Ingested count is a floor for what queries must see: a batch
			// is counted only after AddBatch returned.
			floor := ingested.Load()
			var n uint64
			var lastID PacketID
			var lastTS time.Duration
			first := true
			s.Scan(func(sp *StoredPacket) bool {
				if !first && (sp.TS < lastTS || (sp.TS == lastTS && sp.ID <= lastID)) {
					t.Errorf("scan order violated: (%v,%d) after (%v,%d)", sp.TS, sp.ID, lastTS, lastID)
					return false
				}
				first = false
				lastTS, lastID = sp.TS, sp.ID
				n++
				return true
			})
			if n < floor {
				t.Errorf("scan saw %d packets, %d were already acked", n, floor)
				return
			}
			if n < lastTotal {
				t.Errorf("total packets regressed: %d -> %d", lastTotal, n)
				return
			}
			lastTotal = n
			s.Select(f, 50)
			s.Count(f)
			s.Flows()
			s.TierStats()
			s.Stats()
		}
	}()

	wg.Wait()
	stopCompact()

	// Converged store must equal the untiered reference exactly.
	ref := NewSharded(4)
	for lo := 0; lo < len(frames); {
		hi := lo + 100
		if hi > len(frames) {
			hi = len(frames)
		}
		if _, err := ref.AddBatch(frames[lo:hi], 2); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	compareTierPrints(t, "post-race", tierFingerprint(t, ref), tierFingerprint(t, s))
	if ts := s.TierStats(); ts.Seals == 0 || ts.ColdPackets == 0 {
		t.Fatalf("race test never sealed: %+v", ts)
	}
}

// TestTierCacheQueryCompactRace races cold queries against seal/compact
// churn with the decoded-block cache enabled: concurrent fills, LRU
// evictions and compaction invalidations must never tear a result. The
// small budget forces constant eviction; the converged store must still
// equal the untiered reference exactly.
func TestTierCacheQueryCompactRace(t *testing.T) {
	frames := tierFrames(t)
	if len(frames) > 3000 {
		frames = frames[:3000]
	}
	s := NewSharded(4)
	if err := s.EnableTiering(TierPolicy{
		Dir: t.TempDir(), HotPackets: 1024, KeepFrac: 0.5,
		MinSealPackets: 32, SegmentPackets: 128,
		CacheBytes: 64 << 10,
	}); err != nil {
		t.Fatal(err)
	}
	stopCompact := s.StartTierCompactor(2 * time.Millisecond)
	defer stopCompact()

	sel, err := ParseFilter("proto == udp && dst.port == 53")
	if err != nil {
		t.Fatal(err)
	}
	scan, err := ParseFilter("len > 0 && ts >= 0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // ingester
		defer wg.Done()
		defer close(done)
		for lo := 0; lo < len(frames); {
			hi := lo + 100
			if hi > len(frames) {
				hi = len(frames)
			}
			if _, err := s.AddBatch(frames[lo:hi], 2); err != nil {
				t.Errorf("AddBatch: %v", err)
				return
			}
			lo = hi
		}
	}()

	wg.Add(1)
	go func() { // seal/compact churn invalidating cached blocks
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
			s.SealHot(256)
			s.CompactTier()
		}
	}()

	for g := 0; g < 2; g++ { // cache-hitting query load
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastN int
			for {
				select {
				case <-done:
					return
				default:
				}
				// The indexable filter exercises selective block decode, the
				// non-indexable one full decode — both through the cache.
				s.Select(sel, 50)
				n := s.Count(scan)
				if n < lastN {
					t.Errorf("count regressed under churn: %d -> %d", lastN, n)
					return
				}
				lastN = n
				s.PacketsBetween(0, -1)
			}
		}()
	}

	wg.Wait()
	stopCompact()

	ref := NewSharded(4)
	for lo := 0; lo < len(frames); {
		hi := lo + 100
		if hi > len(frames) {
			hi = len(frames)
		}
		if _, err := ref.AddBatch(frames[lo:hi], 2); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	compareTierPrints(t, "post-cache-race", tierFingerprint(t, ref), tierFingerprint(t, s))
	ts := s.TierStats()
	if ts.Seals == 0 || ts.ColdPackets == 0 {
		t.Fatalf("cache race test never sealed: %+v", ts)
	}
	if ts.CacheHits+ts.CacheMisses == 0 {
		t.Fatal("cache race test never touched the cache")
	}
}
