package datastore

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"campuslab/internal/traffic"
)

// Tier benchmarks (DESIGN.md §14):
//
//	go test -bench='BenchmarkSeal|BenchmarkSegmentQuery|BenchmarkColdSelect|BenchmarkEvictBefore' ./internal/datastore
//
// BenchmarkSegmentQuery sweeps query shape (selective/absent/broad) ×
// data placement (hot/cold) × segment format (v1/v2, cold only) ×
// operation (count/select): `absent` is the zone-map prune-hit case
// (every segment skipped without touching a column), `selective` is the
// prune-miss + posting-intersection case — on this fixture a needle, a
// few dozen rows in 20k, so op=select isolates the block-skipping win —
// and `broad` is the worst case (not indexable, full window decode).
// BenchmarkColdSelect adds the decoded-block cache axis (cold+warm).

// tierBenchFrames is a mid-sized episode: big enough to fill several
// segments, small enough that per-iteration store rebuilds stay honest.
var tierBenchFrames = sync.OnceValue(func() []traffic.Frame {
	frames := queryBenchFrames()
	if len(frames) > 20000 {
		frames = frames[:20000]
	}
	return frames
})

// coldBenchKey keys one fully sealed store per (segment size, format,
// cache budget) combination.
type coldBenchKey struct {
	segPackets int
	format     int
	cacheBytes int64
}

// coldBenchStore builds (once) the fully sealed store for a key. The
// segment directory must outlive the benchmark that happens to build the
// store (the stores are shared), so it cannot come from b.TempDir().
var coldBenchStores sync.Map

func coldBenchStore(b *testing.B, key coldBenchKey) *Store {
	b.Helper()
	if st, ok := coldBenchStores.Load(key); ok {
		return st.(*Store)
	}
	dir, err := os.MkdirTemp("", "campuslab-tier-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	st := NewSharded(4)
	if err := st.EnableTiering(TierPolicy{
		Dir: dir, SegmentPackets: key.segPackets, MinSealPackets: 1,
		Format: key.format, CacheBytes: key.cacheBytes,
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := st.AddBatch(tierBenchFrames(), 0); err != nil {
		b.Fatal(err)
	}
	if _, err := st.SealHot(0); err != nil {
		b.Fatal(err)
	}
	coldBenchStores.Store(key, st)
	return st
}

// BenchmarkSeal measures the spill path end to end: collect, column-encode,
// compress, fsync, manifest commit, hot trim.
func BenchmarkSeal(b *testing.B) {
	frames := tierBenchFrames()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := NewSharded(4)
		if err := st.EnableTiering(TierPolicy{Dir: b.TempDir(), SegmentPackets: 4096, MinSealPackets: 1}); err != nil {
			b.Fatal(err)
		}
		if _, err := st.AddBatch(frames, 0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		n, err := st.SealHot(0)
		if err != nil {
			b.Fatal(err)
		}
		if n != len(frames) {
			b.Fatalf("sealed %d of %d", n, len(frames))
		}
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// benchStoreOp runs one (store, filter, op) cell.
func benchStoreOp(b *testing.B, st *Store, f *Filter, op string, cold bool) {
	st.SetQueryWorkers(1)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if op == "select" {
			n = len(st.Select(f, 0))
		} else {
			n = st.Count(f)
		}
	}
	b.ReportMetric(float64(n), "hits")
	if cold {
		if ts := st.TierStats(); ts.Err != nil {
			b.Fatal(ts.Err)
		}
	}
}

// BenchmarkSegmentQuery: the cold rows live in compressed columns; the
// sweep shows what each query shape pays for them relative to hot RAM,
// and — per format — what block-compressed v2 saves over single-stream
// v1. The ISSUE-10 acceptance ratio is cold selective op=select, fmt=v2
// versus fmt=v1.
func BenchmarkSegmentQuery(b *testing.B) {
	cases := []struct{ name, expr string }{
		{"selective", "proto == udp && dst.port == 53"}, // prune-miss needle: zones admit, index narrows to ~40 rows
		{"absent", "dst.port == 59999"},                 // prune-hit: zones refute every segment
		{"broad", "len > 100"},                          // not indexable: full window decode
	}
	for _, c := range cases {
		f := MustFilter(c.expr)
		for _, op := range []string{"count", "select"} {
			op := op
			b.Run(fmt.Sprintf("expr=%s/tier=hot/op=%s", c.name, op), func(b *testing.B) {
				benchStoreOp(b, queryBenchStore(b, 4), f, op, false)
			})
			for _, format := range []int{segVersion1, segVersion2} {
				st := coldBenchStore(b, coldBenchKey{segPackets: 4096, format: format})
				b.Run(fmt.Sprintf("expr=%s/tier=cold/fmt=v%d/op=%s", c.name, format, op), func(b *testing.B) {
					benchStoreOp(b, st, f, op, true)
				})
			}
		}
	}
	// Prune accounting sanity: the absent query must have skipped every
	// segment via zone maps.
	st := coldBenchStore(b, coldBenchKey{segPackets: 4096, format: segVersion2})
	pre := st.TierStats()
	st.Count(MustFilter("dst.port == 59999"))
	post := st.TierStats()
	if scanned := post.SegmentsScanned - pre.SegmentsScanned; scanned != 0 {
		b.Fatalf("absent-value query decoded %d segments; zone maps should prune all", scanned)
	}
}

// BenchmarkColdSelect is the cache axis: the selective materializing
// query against hot RAM, the cold tier decoding every time, and the cold
// tier with a warm decoded-block cache.
func BenchmarkColdSelect(b *testing.B) {
	f := MustFilter("proto == udp && dst.port == 53")
	cases := []struct {
		name string
		key  coldBenchKey
		hot  bool
	}{
		{name: "tier=hot", hot: true},
		{name: "tier=cold/cache=off", key: coldBenchKey{segPackets: 4096, format: segVersion2}},
		{name: "tier=cold/cache=on", key: coldBenchKey{segPackets: 4096, format: segVersion2, cacheBytes: 64 << 20}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var st *Store
			if c.hot {
				st = queryBenchStore(b, 4)
			} else {
				st = coldBenchStore(b, c.key)
				if c.key.cacheBytes > 0 {
					st.Select(f, 0) // warm the cache outside the timer
				}
			}
			st.SetQueryWorkers(1)
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				n = len(st.Select(f, 0))
			}
			if n == 0 {
				b.Fatal("selective Select matched nothing; segment reads are failing")
			}
			b.ReportMetric(float64(n), "hits")
			if !c.hot {
				ts := st.TierStats()
				if ts.Err != nil {
					b.Fatal(ts.Err)
				}
				if c.key.cacheBytes > 0 && ts.CacheHits == 0 {
					b.Fatal("warm-cache benchmark never hit the cache")
				}
			}
		})
	}
}

// BenchmarkEvictBefore pins the untiered eviction path (per-shard slab cut
// + full posting trim): the tiered EvictBefore routes to SealBefore, so
// this guards the legacy drop path against regressions.
func BenchmarkEvictBefore(b *testing.B) {
	frames := tierBenchFrames()
	var cut time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := NewSharded(4)
		if _, err := st.AddBatch(frames, 0); err != nil {
			b.Fatal(err)
		}
		if cut == 0 {
			cut = time.Duration(st.lastTS.Load()) / 2
		}
		b.StartTimer()
		if n := st.EvictBefore(cut); n == 0 {
			b.Fatal("evicted nothing")
		}
	}
}
