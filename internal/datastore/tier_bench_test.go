package datastore

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"campuslab/internal/traffic"
)

// Tier benchmarks (DESIGN.md §14):
//
//	go test -bench='BenchmarkSeal|BenchmarkSegmentQuery|BenchmarkEvictBefore' ./internal/datastore
//
// BenchmarkSegmentQuery sweeps query shape (selective/absent/broad) ×
// data placement (hot/cold): `absent` is the zone-map prune-hit case
// (every segment skipped without touching a column), `selective` is the
// prune-miss + posting-intersection case, `broad` is the worst case
// (not indexable, full window decode).

// tierBenchFrames is a mid-sized episode: big enough to fill several
// segments, small enough that per-iteration store rebuilds stay honest.
var tierBenchFrames = sync.OnceValue(func() []traffic.Frame {
	frames := queryBenchFrames()
	if len(frames) > 20000 {
		frames = frames[:20000]
	}
	return frames
})

// coldBenchStore builds one fully sealed store per segment-target size.
// The segment directory must outlive the benchmark that happens to build
// the store (the cache is shared), so it cannot come from b.TempDir().
var coldBenchStores sync.Map

func coldBenchStore(b *testing.B, segPackets int) *Store {
	b.Helper()
	if st, ok := coldBenchStores.Load(segPackets); ok {
		return st.(*Store)
	}
	dir, err := os.MkdirTemp("", "campuslab-tier-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	st := NewSharded(4)
	if err := st.EnableTiering(TierPolicy{Dir: dir, SegmentPackets: segPackets, MinSealPackets: 1}); err != nil {
		b.Fatal(err)
	}
	if _, err := st.AddBatch(tierBenchFrames(), 0); err != nil {
		b.Fatal(err)
	}
	if _, err := st.SealHot(0); err != nil {
		b.Fatal(err)
	}
	coldBenchStores.Store(segPackets, st)
	return st
}

// BenchmarkSeal measures the spill path end to end: collect, column-encode,
// compress, fsync, manifest commit, hot trim.
func BenchmarkSeal(b *testing.B) {
	frames := tierBenchFrames()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := NewSharded(4)
		if err := st.EnableTiering(TierPolicy{Dir: b.TempDir(), SegmentPackets: 4096, MinSealPackets: 1}); err != nil {
			b.Fatal(err)
		}
		if _, err := st.AddBatch(frames, 0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		n, err := st.SealHot(0)
		if err != nil {
			b.Fatal(err)
		}
		if n != len(frames) {
			b.Fatalf("sealed %d of %d", n, len(frames))
		}
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkSegmentQuery: the cold rows live in compressed columns; the
// sweep shows what each query shape pays for them relative to hot RAM.
func BenchmarkSegmentQuery(b *testing.B) {
	cases := []struct{ name, expr string }{
		{"selective", "proto == udp && dst.port == 53"}, // prune-miss: zones admit, index narrows
		{"absent", "dst.port == 59999"},                 // prune-hit: zones refute every segment
		{"broad", "len > 100"},                          // not indexable: full window decode
	}
	for _, c := range cases {
		f := MustFilter(c.expr)
		for _, tier := range []string{"hot", "cold"} {
			var st *Store
			if tier == "hot" {
				st = queryBenchStore(b, 4)
			} else {
				st = coldBenchStore(b, 4096)
			}
			b.Run(fmt.Sprintf("expr=%s/tier=%s", c.name, tier), func(b *testing.B) {
				st.SetQueryWorkers(1)
				b.ReportAllocs()
				b.ResetTimer()
				n := 0
				for i := 0; i < b.N; i++ {
					n = st.Count(f)
				}
				b.ReportMetric(float64(n), "hits")
				if tier == "cold" {
					ts := st.TierStats()
					if ts.Err != nil {
						b.Fatal(ts.Err)
					}
				}
			})
		}
	}
	// Prune accounting sanity: the absent query must have skipped every
	// segment via zone maps.
	st := coldBenchStore(b, 4096)
	pre := st.TierStats()
	st.Count(MustFilter("dst.port == 59999"))
	post := st.TierStats()
	if scanned := post.SegmentsScanned - pre.SegmentsScanned; scanned != 0 {
		b.Fatalf("absent-value query decoded %d segments; zone maps should prune all", scanned)
	}
}

// BenchmarkSegmentSelect is BenchmarkSegmentQuery's materializing variant:
// candidates are decoded and returned, not just counted.
func BenchmarkSegmentSelect(b *testing.B) {
	f := MustFilter("proto == udp && dst.port == 53")
	st := coldBenchStore(b, 4096)
	st.SetQueryWorkers(1)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(st.Select(f, 0))
	}
	if n == 0 {
		b.Fatal("selective cold Select matched nothing; segment reads are failing")
	}
	if ts := st.TierStats(); ts.Err != nil {
		b.Fatal(ts.Err)
	}
	b.ReportMetric(float64(n), "hits")
}

// BenchmarkEvictBefore pins the untiered eviction path (per-shard slab cut
// + full posting trim): the tiered EvictBefore routes to SealBefore, so
// this guards the legacy drop path against regressions.
func BenchmarkEvictBefore(b *testing.B) {
	frames := tierBenchFrames()
	var cut time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := NewSharded(4)
		if _, err := st.AddBatch(frames, 0); err != nil {
			b.Fatal(err)
		}
		if cut == 0 {
			cut = time.Duration(st.lastTS.Load()) / 2
		}
		b.StartTimer()
		if n := st.EvictBefore(cut); n == 0 {
			b.Fatal("evicted nothing")
		}
	}
}
