package datastore

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"campuslab/internal/traffic"
)

// fuzzSeedSegment builds a small deterministic segment blob in the given
// format version for the fuzz seed corpus (mirrors segTestRows but
// without *testing.T plumbing).
func fuzzSeedSegment(n int, version uint16) []byte {
	g := traffic.NewCampus(traffic.Profile{
		Plan: traffic.DefaultPlan(8), FlowsPerSecond: 40,
		Duration: time.Second, Seed: 7,
	})
	s := NewSharded(1)
	for _, f := range traffic.Collect(g, 0) {
		f := f
		s.IngestFrame(&f)
	}
	var rows []StoredPacket
	s.Scan(func(sp *StoredPacket) bool {
		rows = append(rows, *sp)
		return len(rows) < n
	})
	blob, _, err := encodeSegmentVer(rows, version)
	if err != nil {
		panic(err)
	}
	return blob
}

// FuzzSegmentDecode: for arbitrary bytes, the segment decoder must never
// panic; a failed decode must return a typed ErrSegmentCorrupt; and a
// successful decode must be a logical fixpoint — re-encoding the decoded
// rows and decoding again yields identical rows. (Byte identity is only
// guaranteed for encoder-canonical inputs: DEFLATE admits more than one
// valid stream for the same payload.)
func FuzzSegmentDecode(f *testing.F) {
	// Both format versions seed the corpus: v2 (block-compressed +
	// dictionary columns) exercises the block/dict validators, v1 the
	// legacy single-stream path. Crossing over a few hundred rows makes
	// the v2 seed span multiple blocks.
	for _, version := range []uint16{segVersion2, segVersion1} {
		valid := fuzzSeedSegment(300, version)
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
		f.Add(valid[:segHeaderSize])
		mut := append([]byte(nil), valid...)
		mut[len(mut)/3] ^= 0x80
		f.Add(mut)
	}
	f.Add([]byte("CLSG"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := decodeSegmentRows(data)
		if err != nil {
			if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("decode error does not wrap ErrSegmentCorrupt: %v", err)
			}
			return
		}
		blob, _, err := encodeSegment(rows)
		if err != nil {
			t.Fatalf("decoded rows failed to re-encode: %v", err)
		}
		again, err := decodeSegmentRows(blob)
		if err != nil {
			t.Fatalf("re-encoded segment failed to decode: %v", err)
		}
		if !reflect.DeepEqual(rows, again) {
			t.Fatal("decode∘encode is not a fixpoint")
		}
	})
}
