package datastore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"campuslab/internal/traffic"
)

// Query-engine benchmarks (DESIGN.md §11): BenchmarkSelect and
// BenchmarkCount sweep selective vs broad filters × shard counts × query
// workers × planner-vs-scan path, so one run shows both the index win
// (path=index vs path=scan at workers=1) and the shard fan-out curve
// (workers sweep — needs a multi-core box to show wall-clock gains):
//
//	go test -bench='BenchmarkSelect|BenchmarkCount' -benchmem ./internal/datastore

// queryBenchFrames synthesizes one ~45k-packet benign+attack episode,
// built once and shared by every benchmark store.
var queryBenchFrames = sync.OnceValue(func() []traffic.Frame {
	plan := traffic.DefaultPlan(60)
	benign := traffic.NewCampus(traffic.Profile{
		Plan: plan, FlowsPerSecond: 120, Duration: 6 * time.Second, Seed: 9301,
	})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(7),
		Start: 500 * time.Millisecond, Duration: 4 * time.Second, Rate: 1500, Seed: 9302,
	})
	return traffic.Collect(traffic.NewMerge(benign, amp), 0)
})

// queryBenchStores caches one loaded store per shard count.
var queryBenchStores sync.Map

func queryBenchStore(b *testing.B, shards int) *Store {
	b.Helper()
	if st, ok := queryBenchStores.Load(shards); ok {
		return st.(*Store)
	}
	st := NewSharded(shards)
	st.AddBatch(queryBenchFrames(), 0)
	queryBenchStores.Store(shards, st)
	return st
}

// queryBenchCases: a selective filter the planner can answer almost
// entirely from posting lists, and a broad one that forces the scan path.
var queryBenchCases = []struct{ name, expr string }{
	{"selective", "proto == udp && dst.port == 53"},
	{"broad", "len > 100"},
}

func benchQuery(b *testing.B, run func(b *testing.B, st *Store, f *Filter)) {
	for _, c := range queryBenchCases {
		f := MustFilter(c.expr)
		for _, shards := range []int{1, 4, 16} {
			st := queryBenchStore(b, shards)
			for _, workers := range []int{1, 4} {
				for _, path := range []string{"index", "scan"} {
					name := fmt.Sprintf("expr=%s/shards=%d/workers=%d/path=%s", c.name, shards, workers, path)
					b.Run(name, func(b *testing.B) {
						st.SetQueryWorkers(workers)
						st.SetScanQuery(path == "scan")
						defer st.SetScanQuery(false)
						b.ReportAllocs()
						b.ResetTimer()
						run(b, st, f)
					})
				}
			}
		}
	}
}

func BenchmarkSelect(b *testing.B) {
	benchQuery(b, func(b *testing.B, st *Store, f *Filter) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(st.Select(f, 0))
		}
		b.ReportMetric(float64(n), "hits")
	})
}

func BenchmarkCount(b *testing.B) {
	benchQuery(b, func(b *testing.B, st *Store, f *Filter) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = st.Count(f)
		}
		b.ReportMetric(float64(n), "hits")
	})
}
