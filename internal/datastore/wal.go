package datastore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"campuslab/internal/obs"
	"campuslab/internal/traffic"
)

// The write-ahead log makes acknowledged ingest durable between snapshots:
// every acked batch is appended (and, per the fsync policy, synced) to a
// segment file before the caller sees its PacketID, and recovery replays
// the log on top of the newest snapshot. The log is segmented so
// truncation after a checkpoint is a handful of unlinks, and CRC-framed
// so a torn tail or bit rot stops replay at the last valid record instead
// of corrupting the store.
//
// On-disk layout (all integers little-endian):
//
//	segment file <dir>/<seq>.wal:
//	  header:  magic "CLWL" | version u16 | segment seq u64
//	  records: per record: payload len u32 | payload crc32 u32 | payload
//	  payload: frame count u32, then per frame:
//	           ts i64 | link u16 | label u8 | actor u8 | dlen u32 | data
//
// Replay walks segments in ascending sequence order and stops — cleanly,
// never with a panic — at the first invalid byte: a short header, a bad
// magic, a record length past the segment end, or a checksum mismatch.
// Everything before that point is applied; everything after (including
// later segments) is discarded, so the recovered store is always a prefix
// of the acknowledged batch stream.

const (
	walMagic   = "CLWL"
	walVersion = 1
	// walHeaderSize is the segment header: magic + version + seq.
	walHeaderSize = 4 + 2 + 8
	// walMaxRecord bounds one record payload; anything larger is treated
	// as corruption (a flipped length byte must not drive a huge alloc).
	walMaxRecord = 64 << 20
	// walMaxFrame mirrors the snapshot loader's per-packet sanity bound.
	walMaxFrame = 1 << 20
)

// ErrWALCorrupt reports a write-ahead-log segment whose tail (or body)
// failed validation. Replay treats corruption as end-of-log — the error is
// surfaced in RecoveryStats, not returned — so this sentinel is mainly for
// the explicit segment-inspection paths and tests.
var ErrWALCorrupt = errors.New("datastore: wal corrupt")

// FsyncPolicy selects how eagerly the WAL syncs appends to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append — and fsyncs the directory
	// when a segment is created, so the file's dirent survives too: an
	// acked batch survives an immediate power cut. The safest and
	// slowest policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs every SyncEvery appends (and on Flush/rotate/
	// truncate): a crash loses at most the unsynced suffix of acked
	// batches on power loss, nothing on a process kill (the OS still has
	// the writes). The operational default.
	FsyncInterval
	// FsyncNone never syncs explicitly; the OS flushes on its own
	// schedule. Fastest; a power cut can lose everything since the last
	// checkpoint, a process kill still loses nothing.
	FsyncNone
)

// String names the policy (benchmark axes, healthz).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "none"
	}
}

// ParseFsyncPolicy maps the flag spelling to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("datastore: unknown fsync policy %q (always|interval|none)", s)
}

// WALConfig parameterizes a write-ahead log.
type WALConfig struct {
	// Dir holds the segment files. Created if missing.
	Dir string
	// Fsync is the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// SyncEvery is the append count between syncs under FsyncInterval
	// (default 16).
	SyncEvery int
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (default 4 MiB).
	SegmentBytes int64
	// StartSeq forces the first new segment's sequence to be at least
	// this value (0 = right after the newest existing segment). Recover
	// passes the loaded snapshot's covered sequence + 1 so a record
	// appended after recovery can never land in a segment a snapshot
	// already claims to cover.
	StartSeq uint64
}

func (c WALConfig) withDefaults() WALConfig {
	if c.SyncEvery <= 0 {
		c.SyncEvery = 16
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	return c
}

// WAL metrics: appended records/bytes, syncs, truncations, and the replay
// outcomes recovery reports.
var (
	obsWALAppends   = obs.Default.Counter("campuslab_wal_appends_total")
	obsWALBytes     = obs.Default.Counter("campuslab_wal_bytes_total")
	obsWALSyncs     = obs.Default.Counter("campuslab_wal_syncs_total")
	obsWALTruncates = obs.Default.Counter("campuslab_wal_truncations_total")
	obsWALReplayed  = obs.Default.Counter("campuslab_wal_replayed_records_total")
	obsWALCorrupt   = obs.Default.Counter("campuslab_wal_corrupt_tails_total")
)

// WAL is an append-only segmented log. It is not itself goroutine-safe:
// the owning Store serializes appends, flushes, and truncation under its
// ingest mutex.
type WAL struct {
	cfg     WALConfig
	f       *os.File
	seq     uint64 // current segment sequence
	segSize int64  // bytes written to the current segment
	pending int    // appends since the last sync
	err     error  // sticky: first append/sync failure wedges the log

	records  uint64 // records appended since the last truncation
	bytes    uint64 // payload+frame bytes appended since the last truncation
	segments int    // live segment files (including the current one)

	buf []byte // encode scratch, reused across appends
}

// segName formats a segment file name; names sort in sequence order.
func segName(seq uint64) string { return fmt.Sprintf("%016x.wal", seq) }

// parseSegName inverts segName; ok=false for foreign files.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".wal") || len(name) != 16+4 {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[:16], 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// NewestWALSegment returns the path of the highest-sequence segment file
// in dir — the one a crash mid-append would tear. Chaos harnesses use it
// to plant torn tails; an error means no segments exist.
func NewestWALSegment(dir string) (string, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return "", err
	}
	if len(seqs) == 0 {
		return "", fmt.Errorf("datastore: no wal segments in %s", dir)
	}
	return filepath.Join(dir, segName(seqs[len(seqs)-1])), nil
}

// listSegments returns the WAL segment sequences in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// OpenWAL opens (creating if needed) a write-ahead log in cfg.Dir and
// positions it for appending: existing segments are left for Replay, and
// new records go to a fresh segment numbered after the newest existing
// one, so a recovered process never overwrites history it has not yet
// replayed.
func OpenWAL(cfg WALConfig) (*WAL, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("datastore: wal: Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("datastore: wal: %w", err)
	}
	seqs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("datastore: wal: %w", err)
	}
	w := &WAL{cfg: cfg, segments: len(seqs)}
	next := uint64(1)
	if n := len(seqs); n > 0 {
		next = seqs[n-1] + 1
	}
	if next < cfg.StartSeq {
		next = cfg.StartSeq
	}
	if err := w.openSegment(next); err != nil {
		return nil, err
	}
	return w, nil
}

// syncDir fsyncs a directory so entries created (or renamed) in it are
// durable — without this, a power cut can lose a freshly created segment
// file even though its contents were fsynced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// openSegment starts segment seq and writes its header.
func (w *WAL) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.cfg.Dir, segName(seq)),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("datastore: wal segment: %w", err)
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], walVersion)
	binary.LittleEndian.PutUint64(hdr[6:14], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("datastore: wal header: %w", err)
	}
	if w.cfg.Fsync == FsyncAlways {
		// The power-cut guarantee needs the header on disk and the
		// directory entry durable: a synced record in a file whose dirent
		// was never fsynced vanishes with the power.
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("datastore: wal header sync: %w", err)
		}
		if err := syncDir(w.cfg.Dir); err != nil {
			f.Close()
			return fmt.Errorf("datastore: wal dir sync: %w", err)
		}
	}
	w.f, w.seq, w.segSize, w.pending = f, seq, walHeaderSize, 0
	w.segments++
	return nil
}

// encodeBatch serializes one batch into w.buf (after the 8-byte record
// header) and returns the full framed record.
func (w *WAL) encodeBatch(frames []traffic.Frame, links []uint16) []byte {
	need := 8 + 4
	for i := range frames {
		need += 16 + len(frames[i].Data)
	}
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	b := w.buf[:8] // record header filled last
	b = binary.LittleEndian.AppendUint32(b, uint32(len(frames)))
	for i := range frames {
		f := &frames[i]
		b = binary.LittleEndian.AppendUint64(b, uint64(f.TS))
		var link uint16
		if links != nil {
			link = links[i]
		}
		b = binary.LittleEndian.AppendUint16(b, link)
		actor := byte(0)
		if f.Actor {
			actor = 1
		}
		b = append(b, byte(f.Label), actor)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Data)))
		b = append(b, f.Data...)
	}
	payload := b[8:]
	binary.LittleEndian.PutUint32(b[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	w.buf = b
	return b
}

// Append logs one acked batch. The record is on disk (and synced, per the
// policy) before Append returns nil; a non-nil error means the batch is
// NOT durable and must not be acknowledged. The first I/O failure wedges
// the log: every later Append fails fast with the same error, so a sick
// disk degrades loudly instead of interleaving lost and kept records.
func (w *WAL) Append(frames []traffic.Frame, links []uint16) error {
	if w.err != nil {
		return w.err
	}
	rec := w.encodeBatch(frames, links)
	if _, err := w.f.Write(rec); err != nil {
		w.err = fmt.Errorf("datastore: wal append: %w", err)
		return w.err
	}
	w.segSize += int64(len(rec))
	w.records++
	w.bytes += uint64(len(rec))
	w.pending++
	obsWALAppends.Inc()
	obsWALBytes.Add(uint64(len(rec)))
	switch w.cfg.Fsync {
	case FsyncAlways:
		if err := w.sync(); err != nil {
			return err
		}
	case FsyncInterval:
		if w.pending >= w.cfg.SyncEvery {
			if err := w.sync(); err != nil {
				return err
			}
		}
	}
	if w.segSize >= w.cfg.SegmentBytes {
		return w.rotate()
	}
	return nil
}

func (w *WAL) sync() error {
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("datastore: wal sync: %w", err)
		return w.err
	}
	w.pending = 0
	obsWALSyncs.Inc()
	return nil
}

// rotate seals the current segment (synced) and opens the next one.
func (w *WAL) rotate() error {
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("datastore: wal close: %w", err)
		return w.err
	}
	if err := w.openSegment(w.seq + 1); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Flush syncs any unsynced appends (SIGTERM drains call this before the
// final snapshot).
func (w *WAL) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.pending == 0 {
		return nil
	}
	return w.sync()
}

// Truncate drops every segment older than the current one and restarts
// the current one empty — called after a successful checkpoint, whose
// snapshot now covers everything the log held. The caller must guarantee
// no record appended after the snapshot's cut is discarded; the Store does
// so by holding its ingest mutex across checkpoint and truncation.
func (w *WAL) Truncate() error {
	if w.err != nil {
		return w.err
	}
	seqs, err := listSegments(w.cfg.Dir)
	if err != nil {
		return fmt.Errorf("datastore: wal truncate: %w", err)
	}
	for _, seq := range seqs {
		if seq >= w.seq {
			continue
		}
		if err := os.Remove(filepath.Join(w.cfg.Dir, segName(seq))); err != nil {
			return fmt.Errorf("datastore: wal truncate: %w", err)
		}
	}
	// Restart the live segment under the next sequence number so a
	// replayer never sees a sequence reused with different contents.
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("datastore: wal close: %w", err)
		return w.err
	}
	old := w.seq
	w.segments = 0
	if err := w.openSegment(w.seq + 1); err != nil {
		w.err = err
		return err
	}
	if err := os.Remove(filepath.Join(w.cfg.Dir, segName(old))); err != nil {
		return fmt.Errorf("datastore: wal truncate: %w", err)
	}
	w.records, w.bytes = 0, 0
	obsWALTruncates.Inc()
	return nil
}

// Close flushes and closes the live segment.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	ferr := w.Flush()
	cerr := w.f.Close()
	w.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Err returns the sticky append/sync failure, if any. A non-nil Err means
// durability is degraded: in-memory ingest continues but new data is not
// crash-safe. Healthz surfaces this.
func (w *WAL) Err() error { return w.err }

// walBatch is one decoded WAL record.
type walBatch struct {
	frames []traffic.Frame
	links  []uint16
}

// decodeRecord parses one record payload. Corruption returns ErrWALCorrupt
// (wrapped) — never a panic, whatever the bytes.
func decodeRecord(payload []byte) (walBatch, error) {
	var b walBatch
	if len(payload) < 4 {
		return b, fmt.Errorf("%w: short record", ErrWALCorrupt)
	}
	n := binary.LittleEndian.Uint32(payload[:4])
	off := 4
	if uint64(n)*16 > uint64(len(payload)) {
		return b, fmt.Errorf("%w: frame count %d beyond record", ErrWALCorrupt, n)
	}
	b.frames = make([]traffic.Frame, 0, n)
	b.links = make([]uint16, 0, n)
	for i := uint32(0); i < n; i++ {
		if off+16 > len(payload) {
			return walBatch{}, fmt.Errorf("%w: frame %d header", ErrWALCorrupt, i)
		}
		var f traffic.Frame
		f.TS = time.Duration(binary.LittleEndian.Uint64(payload[off : off+8]))
		link := binary.LittleEndian.Uint16(payload[off+8 : off+10])
		f.Label = traffic.Label(payload[off+10])
		f.Actor = payload[off+11] == 1
		dlen := binary.LittleEndian.Uint32(payload[off+12 : off+16])
		off += 16
		if dlen > walMaxFrame || off+int(dlen) > len(payload) {
			return walBatch{}, fmt.Errorf("%w: frame %d claims %d bytes", ErrWALCorrupt, i, dlen)
		}
		f.Data = append([]byte(nil), payload[off:off+int(dlen)]...)
		off += int(dlen)
		b.frames = append(b.frames, f)
		b.links = append(b.links, link)
	}
	if off != len(payload) {
		return walBatch{}, fmt.Errorf("%w: %d trailing bytes", ErrWALCorrupt, len(payload)-off)
	}
	return b, nil
}

// replaySegment streams records from one segment file into apply, stopping
// at the first invalid byte. Returns (records applied, clean); clean=false
// means the segment ended in corruption or a torn tail and replay of later
// segments must not proceed.
func replaySegment(path string, wantSeq uint64, apply func(walBatch)) (uint64, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, false
	}
	if string(hdr[:4]) != walMagic ||
		binary.LittleEndian.Uint16(hdr[4:6]) != walVersion ||
		binary.LittleEndian.Uint64(hdr[6:14]) != wantSeq {
		return 0, false
	}
	var applied uint64
	var rh [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, rh[:]); err != nil {
			// io.EOF: clean end. Unexpected EOF: torn record header.
			return applied, err == io.EOF
		}
		plen := binary.LittleEndian.Uint32(rh[:4])
		want := binary.LittleEndian.Uint32(rh[4:8])
		if plen > walMaxRecord {
			return applied, false
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(f, payload); err != nil {
			return applied, false // torn tail mid-payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return applied, false // bit rot or torn write
		}
		b, err := decodeRecord(payload)
		if err != nil {
			return applied, false
		}
		apply(b)
		applied++
	}
}

// ReplayWAL applies every valid record in dir's segments, in sequence
// order, to apply. It stops at the first corruption (reporting clean=false)
// and never panics; the applied records are always a prefix of the
// appended record stream.
func ReplayWAL(dir string, apply func(frames []traffic.Frame, links []uint16)) (records uint64, clean bool, err error) {
	return ReplayWALFrom(dir, 0, apply)
}

// ReplayWALFrom is ReplayWAL for a store loaded from a snapshot that
// already covers every segment with sequence <= covered: those segments
// — left behind when a crash lands between a checkpoint's snapshot
// rename and the end of truncation — are skipped, never replayed on top
// of the data they are already part of. With covered > 0 the first
// replayed segment must be exactly covered+1; a later start means
// uncovered segments are missing, which is a loss, not a prefix.
func ReplayWALFrom(dir string, covered uint64, apply func(frames []traffic.Frame, links []uint16)) (records uint64, clean bool, err error) {
	seqs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("datastore: wal replay: %w", err)
	}
	if covered > 0 {
		live := seqs[:0]
		for _, seq := range seqs {
			if seq > covered {
				live = append(live, seq)
			}
		}
		seqs = live
	}
	clean = true
	for i, seq := range seqs {
		if i == 0 && covered > 0 && seq != covered+1 {
			clean = false
			break
		}
		if i > 0 && seq != seqs[i-1]+1 {
			// A gap means an interrupted truncation removed a middle
			// segment; anything after the gap is not a prefix. Stop.
			clean = false
			break
		}
		n, ok := replaySegment(filepath.Join(dir, segName(seq)), seq, func(b walBatch) {
			apply(b.frames, b.links)
		})
		records += n
		obsWALReplayed.Add(n)
		if !ok {
			clean = false
			break
		}
	}
	if !clean {
		obsWALCorrupt.Inc()
	}
	return records, clean, nil
}
