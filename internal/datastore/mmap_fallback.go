//go:build !linux

package datastore

// mmapSupported: non-Linux builds always take the os.ReadFile path.
const mmapSupported = false

func mmapFile(path string) ([]byte, func(), error) {
	return nil, nil, errMmapUnavailable
}
