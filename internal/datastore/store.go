// Package datastore implements the paper's §5 data store: "a single
// platform for collecting, storing, indexing, mining, and visualizing
// network data" — packet records with time and flow indexes, on-the-fly
// metadata, labels, linkage to complementary sensor events, a filter query
// language, and retention/storage accounting.
//
// The store is sharded: packets and flow metadata are partitioned across N
// shards by five-tuple hash, each shard with its own lock, packet slab and
// flow map, so ingest scales with cores. All query surfaces merge shards
// with a deterministic (timestamp, packet-ID) sort, so results are
// byte-for-byte identical at any shard count — including N=1, which is the
// exact serial store.
package datastore

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"campuslab/internal/capture"
	"campuslab/internal/eventlog"
	"campuslab/internal/faults"
	"campuslab/internal/obs"
	"campuslab/internal/packet"
	"campuslab/internal/parallel"
	"campuslab/internal/traffic"
)

// PacketID identifies one stored packet. IDs are allocated from a single
// store-wide sequence (never per shard), so they stay globally unique and
// ascending in arrival order no matter how packets are spread over shards.
type PacketID uint64

// StoredPacket is one packet record with its on-the-fly metadata (the
// parsed Summary), kept alongside the raw bytes.
type StoredPacket struct {
	ID      PacketID
	TS      time.Duration
	Link    uint16
	Summary packet.Summary
	Data    []byte
	// Label/Actor carry per-packet ground truth when the packet came
	// from a labeled generator (zero values otherwise). Actor marks the
	// packet's source as the malicious actor, not a victim response.
	Label traffic.Label
	Actor bool
}

// FlowKey is the canonical five-tuple a flow is indexed under.
type FlowKey = packet.FiveTuple

// FlowMeta is the per-flow aggregate the store maintains incrementally —
// the "extensive set of on-the-fly generated metadata".
type FlowMeta struct {
	Key          FlowKey
	First        time.Duration
	Last         time.Duration
	Packets      uint64
	Bytes        uint64
	PayloadBytes uint64
	TCPFlags     packet.TCPFlags
	DNSQueries   uint32
	DNSResponses uint32
	DNSAnyCount  uint32        // DNS messages with QTYPE=ANY (amplification tell)
	Label        traffic.Label // ground truth if registered, else benign
	Labeled      bool
	pktIDs       []PacketID
}

// PacketIDs returns the IDs of this flow's packets in arrival order
// (ascending ID). A flow lives entirely inside one shard, so the list is
// maintained in order at ingest time and needs no merge.
func (m *FlowMeta) PacketIDs() []PacketID { return m.pktIDs }

// shard is one partition of the store: its own lock, packet slab, flow
// map, and secondary index. Within a shard, packets are ordered by
// (TS, ID) — both ascending.
type shard struct {
	mu         sync.RWMutex
	packets    []StoredPacket
	flows      map[FlowKey]*FlowMeta
	index      *postings
	dataBytes  uint64
	indexBytes uint64
}

// Store-level metrics, registered once in the process-wide registry.
// These are batch- or event-granularity (never per-packet on a hot loop
// except the serial ingest path, where one atomic add is noise next to
// parsing), so plain registry counters are fine.
var (
	obsIngestBatches   = obs.Default.Counter("campuslab_store_ingest_batches_total")
	obsIngestPackets   = obs.Default.Counter("campuslab_store_ingest_packets_total")
	obsMergeReads      = obs.Default.Counter("campuslab_store_merge_reads_total")
	obsShardContention = obs.Default.Counter(obs.ShardContentionName)
	obsIngestBatchSize = obs.Default.Histogram("campuslab_store_ingest_batch_size",
		[]float64{64, 256, 1024, 4096, 16384})
)

// lock acquires the shard write lock, counting contended acquisitions into
// the registry so shard pressure is observable.
func (sh *shard) lock() {
	if sh.mu.TryLock() {
		return
	}
	obsShardContention.Inc()
	sh.mu.Lock()
}

// Store is the sharded campus data store. Safe for concurrent writers and
// readers; single-writer ingest is fully deterministic.
type Store struct {
	shards []*shard
	mask   uint64 // len(shards)-1; shard count is a power of two

	nextID atomic.Uint64
	lastTS atomic.Int64 // max clamped ingest timestamp seen so far

	eventsMu        sync.RWMutex
	events          []eventlog.Event // time-ordered after AddEvents sorts
	eventIndexBytes uint64

	// persistFaults injects failures into SaveFile's write/sync/rename
	// steps for crash-safety tests (nil = healthy).
	persistFaults faults.Injector

	// scanQuery forces Select/Count onto the serial full-scan reference
	// path (see SetScanQuery); queryWorkers bounds query fan-out
	// (0 = GOMAXPROCS).
	scanQuery    atomic.Bool
	queryWorkers atomic.Int32

	// ingestMu serializes the durability-critical ingest section (WAL
	// append + shard apply) against Checkpoint, so no batch can land in a
	// truncated log without being in the snapshot. It is only taken when
	// a WAL is attached — the lock-free batched path is untouched
	// otherwise. wal is nil for a purely in-memory store; it is an atomic
	// pointer so the hot ingest paths pay one load, not a lock, to learn
	// there is no log.
	ingestMu sync.Mutex
	wal      atomic.Pointer[WAL]

	// totPackets/totBytes track live occupancy for the admission gate
	// (updated per batch and by eviction, never per packet on a hot loop).
	totPackets atomic.Uint64
	totBytes   atomic.Uint64

	// admission is the ingest gate config (zero value = disabled);
	// admissionOn mirrors admission.enabled() so the serial ingest fast
	// path learns "no gate" from one atomic load instead of the RWMutex.
	// Occupancy (totPackets/totBytes) counts the HOT tier only: sealing
	// packets into cold segments frees occupancy, so the gate reopens as
	// data demotes instead of wedging shut once the store fills.
	admissionMu sync.RWMutex
	admission   AdmissionConfig
	admissionOn atomic.Bool

	// tier is the cold tier (tier.go); nil until EnableTiering. An atomic
	// pointer so the ingest and query hot paths learn "no cold tier" from
	// one load.
	tier atomic.Pointer[tier]
}

// ScanQueryEnv, when set to any non-empty value, makes every new Store
// answer queries through the serial full-scan reference path instead of
// the index-assisted planner — the query-engine counterpart of the
// dataplane's CAMPUSLAB_SCAN_PATH knob.
const ScanQueryEnv = "CAMPUSLAB_SCAN_QUERY"

// SetScanQuery forces (or releases) the serial full-scan reference path
// for Select/Count. Results are identical either way; the knob exists so
// tests and operators can diff the planner against the reference.
func (s *Store) SetScanQuery(scan bool) { s.scanQuery.Store(scan) }

// SetQueryWorkers bounds the goroutines a single query fans out across
// shards (0 restores the GOMAXPROCS default). Results are identical at
// any setting.
func (s *Store) SetQueryWorkers(n int) { s.queryWorkers.Store(int32(n)) }

// parserPool recycles flow parsers so concurrent ingest paths each get a
// private scratch parser without per-packet allocation.
var parserPool = sync.Pool{New: func() any { return packet.NewFlowParser() }}

// DefaultShards is the shard count New uses: GOMAXPROCS rounded up to a
// power of two, capped at 16 (past that, merge cost outweighs lock spread
// at campus scale).
func DefaultShards() int {
	n := parallel.Workers(0)
	if n > 16 {
		n = 16
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New returns an empty store with DefaultShards shards.
func New() *Store { return NewSharded(0) }

// NewSharded returns an empty store with n shards (rounded up to a power
// of two; n<=0 means DefaultShards). Results of every query are identical
// at any shard count.
func NewSharded(n int) *Store {
	if n <= 0 {
		n = DefaultShards()
	}
	if n > 256 {
		n = 256
	}
	n = ceilPow2(n)
	s := &Store{shards: make([]*shard, n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i] = &shard{flows: make(map[FlowKey]*FlowMeta), index: newPostings()}
	}
	s.lastTS.Store(int64(-1 << 62))
	s.scanQuery.Store(os.Getenv(ScanQueryEnv) != "")
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// shardFor routes a packet: flows hash to a fixed shard so per-flow state
// never crosses shards; non-IP packets spread round-robin by ID.
func (s *Store) shardFor(sum *packet.Summary, id PacketID) *shard {
	if sum.HasIP {
		return s.shards[sum.Tuple.Canonical().Hash()&s.mask]
	}
	return s.shards[uint64(id)&s.mask]
}

// clampTS enforces the store-wide non-decreasing timestamp contract:
// frames must arrive in non-decreasing order (the capture pipeline
// guarantees this per tap; multi-tap ingest should merge first); minor
// reordering is clamped rather than corrupting the time index.
func (s *Store) clampTS(ts time.Duration) time.Duration {
	for {
		last := s.lastTS.Load()
		if int64(ts) <= last {
			return time.Duration(last)
		}
		if s.lastTS.CompareAndSwap(last, int64(ts)) {
			return ts
		}
	}
}

// ingestItem is one parsed, ID-assigned packet ready to apply to a shard.
type ingestItem struct {
	id      PacketID
	ts      time.Duration
	link    uint16
	data    []byte
	summary packet.Summary
	label   traffic.Label
	actor   bool
}

// apply inserts one packet into the shard and updates its flow metadata.
// Caller holds the shard write lock. Items normally arrive in ascending ID
// order (append fast path); concurrent single-packet ingest can interleave
// IDs across goroutines, in which case the packet is insert-sorted and its
// timestamp pinched into its neighbors' range to keep both orderings.
func (sh *shard) apply(it *ingestItem) {
	sp := StoredPacket{
		ID: it.id, TS: it.ts, Link: it.link, Data: it.data,
		Summary: it.summary, Label: it.label, Actor: it.actor,
	}
	n := len(sh.packets)
	if n > 0 && sp.TS < sh.packets[n-1].TS {
		sp.TS = sh.packets[n-1].TS
	}
	if n == 0 || sp.ID > sh.packets[n-1].ID {
		sh.packets = append(sh.packets, sp)
	} else {
		i := sort.Search(n, func(i int) bool { return sh.packets[i].ID >= sp.ID })
		if sp.TS < sh.packets[i].TS { // keep (TS, ID) co-sorted
			sp.TS = sh.packets[i].TS
		}
		if i > 0 && sp.TS < sh.packets[i-1].TS {
			sp.TS = sh.packets[i-1].TS
		}
		sh.packets = append(sh.packets, StoredPacket{})
		copy(sh.packets[i+1:], sh.packets[i:])
		sh.packets[i] = sp
	}
	sh.dataBytes += uint64(len(sp.Data))
	sh.indexBytes += 8 * uint64(sh.index.add(&sp))

	if !sp.Summary.HasIP {
		return
	}
	key := sp.Summary.Tuple.Canonical()
	fm, ok := sh.flows[key]
	if !ok {
		fm = &FlowMeta{Key: key, First: sp.TS}
		sh.flows[key] = fm
		sh.indexBytes += 96 // rough per-flow index cost
	}
	if sp.TS > fm.Last {
		fm.Last = sp.TS
	}
	fm.Packets++
	fm.Bytes += uint64(len(sp.Data))
	fm.PayloadBytes += uint64(sp.Summary.PayloadLen)
	fm.TCPFlags |= sp.Summary.TCPFlags
	if sp.Summary.IsDNS {
		if sp.Summary.DNSResponse {
			fm.DNSResponses++
		} else {
			fm.DNSQueries++
		}
		if sp.Summary.DNSQueryType == packet.DNSTypeANY {
			fm.DNSAnyCount++
		}
	}
	if k := len(fm.pktIDs); k == 0 || sp.ID > fm.pktIDs[k-1] {
		fm.pktIDs = append(fm.pktIDs, sp.ID)
	} else {
		i := sort.Search(k, func(i int) bool { return fm.pktIDs[i] >= sp.ID })
		fm.pktIDs = append(fm.pktIDs, 0)
		copy(fm.pktIDs[i+1:], fm.pktIDs[i:])
		fm.pktIDs[i] = sp.ID
	}
	sh.indexBytes += 8
	if it.label != traffic.LabelBenign {
		fm.Label = it.label
		fm.Labeled = true
	}
}

// ingest lands one frame. A purely in-memory, ungated store takes the
// lock-free serial fast path; once a WAL is attached or an admission gate
// is configured, the frame goes through appendBatch so serial ingest has
// exactly the batched path's semantics — gated, logged before the ack,
// and refused (not quietly kept in memory) when the log fails.
func (s *Store) ingest(ts time.Duration, link uint16, data []byte, label traffic.Label, actor bool) (PacketID, error) {
	if s.wal.Load() == nil && !s.admissionOn.Load() {
		it := ingestItem{link: link, data: data, label: label, actor: actor}
		p := parserPool.Get().(*packet.FlowParser)
		_ = p.Parse(data, &it.summary) // ErrNotIP etc: stored with partial summary
		parserPool.Put(p)
		id := s.applyItem(&it, ts)
		s.maybeSeal()
		return id, nil
	}
	r, err := s.appendBatch(
		[]traffic.Frame{{TS: ts, Data: data, Label: label, Actor: actor}},
		[]uint16{link}, 1)
	return r.First, err
}

// applyItem assigns the ID and timestamp and lands one parsed packet.
func (s *Store) applyItem(it *ingestItem, ts time.Duration) PacketID {
	it.id = PacketID(s.nextID.Add(1) - 1)
	it.ts = s.clampTS(ts)
	sh := s.shardFor(&it.summary, it.id)
	sh.lock()
	sh.apply(it)
	sh.mu.Unlock()
	s.totPackets.Add(1)
	s.totBytes.Add(uint64(len(it.data)))
	obsIngestPackets.Inc()
	return it.id
}

// Ingest parses and stores one frame captured at ts on the given link.
// Unparseable frames are stored with an empty summary so the "everything
// seen on the wire" contract holds. A nil error is the acknowledgment:
// on a durable store the frame is WAL-logged first and a log failure
// refuses the frame; on a gated store at capacity the frame is refused
// with ErrOverloaded (a shed low-priority frame returns nil — dropped by
// design, like the batched path).
func (s *Store) Ingest(ts time.Duration, link uint16, data []byte) (PacketID, error) {
	return s.ingest(ts, link, data, traffic.LabelBenign, false)
}

// IngestFrame stores a generator frame, registering its ground-truth label
// at both packet and flow granularity. Acknowledgment semantics are those
// of Ingest.
func (s *Store) IngestFrame(f *traffic.Frame) (PacketID, error) {
	return s.ingest(f.TS, 0, f.Data, f.Label, f.Actor)
}

// AddBatch stores a batch of frames: parsing fans out across workers
// (0 = GOMAXPROCS), contiguous IDs are assigned up front, and each shard
// is locked once for its whole slice of the batch — the amortized ingest
// path for the capture pipeline. Output is identical to calling
// IngestFrame in order. Returns the ID of the first stored frame;
// subsequent frames take consecutive IDs.
//
// This is the acknowledged ingest path: when an admission gate is
// configured the batch may be shed in part (low-priority frames dropped)
// or refused outright with ErrOverloaded, and when a WAL is attached the
// batch is durable on disk before AddBatch returns — a nil error IS the
// durability acknowledgment.
func (s *Store) AddBatch(frames []traffic.Frame, workers int) (PacketID, error) {
	r, err := s.AddBatchAdmit(frames, workers)
	return r.First, err
}

// AddBatchAdmit is AddBatch with the full admission outcome (stored vs
// shed counts and the gate posture that applied).
func (s *Store) AddBatchAdmit(frames []traffic.Frame, workers int) (IngestResult, error) {
	return s.appendBatch(frames, nil, workers)
}

// appendBatch is the guarded batched-ingest front door: admission gate,
// then write-ahead log, then shard apply. The WAL append and the apply sit
// under ingestMu so a concurrent Checkpoint can never truncate a record
// whose batch is not yet in the snapshot.
func (s *Store) appendBatch(frames []traffic.Frame, links []uint16, workers int) (IngestResult, error) {
	kept, keptLinks, shed, state, err := s.admitBatch(frames, links)
	r := IngestResult{Shed: shed, State: state}
	if err != nil {
		return r, err
	}
	if len(kept) == 0 {
		r.First = PacketID(s.nextID.Load())
		return r, nil
	}
	if w := s.wal.Load(); w != nil {
		s.ingestMu.Lock()
		if err := w.Append(kept, keptLinks); err != nil {
			s.ingestMu.Unlock()
			return r, err
		}
		r.First = s.addBatch(kept, keptLinks, workers)
		s.ingestMu.Unlock()
	} else {
		r.First = s.addBatch(kept, keptLinks, workers)
	}
	r.Ingested = len(kept)
	// Seal trigger runs outside ingestMu so spilling to the cold tier
	// never blocks the WAL ack path.
	s.maybeSeal()
	return r, nil
}

// addBatch is AddBatch with optional per-frame link ids (nil means link 0
// everywhere — the generator path). Links ride through parsing so every
// packet is indexed under its final link value.
func (s *Store) addBatch(frames []traffic.Frame, links []uint16, workers int) PacketID {
	n := len(frames)
	if n == 0 {
		return PacketID(s.nextID.Load())
	}
	defer obs.Default.StartSpan("ingest")()
	obsIngestBatches.Inc()
	obsIngestPackets.Add(uint64(n))
	obsIngestBatchSize.Observe(float64(n))
	items := make([]ingestItem, n)
	parallel.ForChunks(n, workers, func(lo, hi int) {
		p := parserPool.Get().(*packet.FlowParser)
		for i := lo; i < hi; i++ {
			f := &frames[i]
			it := &items[i]
			it.link, it.data, it.label, it.actor = 0, f.Data, f.Label, f.Actor
			if links != nil {
				it.link = links[i]
			}
			it.ts = f.TS
			_ = p.Parse(f.Data, &it.summary)
		}
		parserPool.Put(p)
	})
	base := PacketID(s.nextID.Add(uint64(n)) - uint64(n))
	var nbytes uint64
	for i := range frames {
		nbytes += uint64(len(frames[i].Data))
	}
	s.totPackets.Add(uint64(n))
	s.totBytes.Add(nbytes)
	// Timestamp clamp is sequential state; resolve it once, in order.
	prev := time.Duration(s.lastTS.Load())
	for i := range items {
		items[i].id = base + PacketID(i)
		if items[i].ts < prev {
			items[i].ts = prev
		}
		prev = items[i].ts
	}
	s.clampTS(prev)
	// Partition by shard, preserving ID order within each partition.
	perShard := make([][]int, len(s.shards))
	for i := range items {
		si := 0
		if items[i].summary.HasIP {
			si = int(items[i].summary.Tuple.Canonical().Hash() & s.mask)
		} else {
			si = int(uint64(items[i].id) & s.mask)
		}
		perShard[si] = append(perShard[si], i)
	}
	parallel.For(len(s.shards), workers, func(si int) {
		idxs := perShard[si]
		if len(idxs) == 0 {
			return
		}
		sh := s.shards[si]
		sh.lock()
		for _, i := range idxs {
			sh.apply(&items[i])
		}
		sh.mu.Unlock()
	})
	return base
}

// AddBatchLinks is AddBatchAdmit with per-frame link ids (nil = link 0
// everywhere) — the remote-ingest path, where frames arrive from another
// campus's taps with their capture links attached. links, when non-nil,
// must be parallel to frames.
func (s *Store) AddBatchLinks(frames []traffic.Frame, links []uint16, workers int) (IngestResult, error) {
	if links != nil && len(links) != len(frames) {
		return IngestResult{}, fmt.Errorf("datastore: %d links for %d frames", len(links), len(frames))
	}
	return s.appendBatch(frames, links, workers)
}

// AddRecords stores captured records through the batched path. Records
// carry no ground-truth labels (they came off the wire, not a generator);
// per-record link ids flow through ingest so the link index stays exact.
func (s *Store) AddRecords(recs []capture.Record, workers int) (PacketID, error) {
	frames := make([]traffic.Frame, len(recs))
	links := make([]uint16, len(recs))
	for i := range recs {
		frames[i] = traffic.Frame{TS: recs[i].TS, Data: recs[i].Data}
		links[i] = recs[i].Link
	}
	r, err := s.appendBatch(frames, links, workers)
	return r.First, err
}

// byID finds the shard-local packet with the given ID. Caller holds at
// least the shard read lock.
func (sh *shard) byID(id PacketID) *StoredPacket {
	i := sort.Search(len(sh.packets), func(i int) bool { return sh.packets[i].ID >= id })
	if i < len(sh.packets) && sh.packets[i].ID == id {
		return &sh.packets[i]
	}
	return nil
}

// Packet returns a copy of the stored packet with the given ID, falling
// back to the cold tier for sealed history.
func (s *Store) Packet(id PacketID) (StoredPacket, bool) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		if sp := sh.byID(id); sp != nil {
			out := *sp
			sh.mu.RUnlock()
			return out, true
		}
		sh.mu.RUnlock()
	}
	if tr := s.tier.Load(); tr != nil {
		return s.coldPacket(tr, id)
	}
	return StoredPacket{}, false
}

// flowShard returns the shard owning key (already canonical or not).
func (s *Store) flowShard(key FlowKey) *shard {
	return s.shards[key.Canonical().Hash()&s.mask]
}

// LabelFlow registers ground truth (or an analyst label) for a flow.
func (s *Store) LabelFlow(key FlowKey, label traffic.Label) error {
	sh := s.flowShard(key)
	sh.lock()
	defer sh.mu.Unlock()
	fm, ok := sh.flows[key.Canonical()]
	if !ok {
		return fmt.Errorf("datastore: no flow %v", key)
	}
	fm.Label = label
	fm.Labeled = true
	return nil
}

// Flow returns the metadata of the flow containing the tuple.
func (s *Store) Flow(key FlowKey) (FlowMeta, bool) {
	sh := s.flowShard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fm, ok := sh.flows[key.Canonical()]
	if !ok {
		return FlowMeta{}, false
	}
	out := *fm
	out.pktIDs = append([]PacketID(nil), fm.pktIDs...)
	return out, true
}

// rlockAll takes every shard read lock (in shard order) and returns the
// unlock function. Writers only ever hold one shard at a time, so the
// fixed acquisition order cannot deadlock.
func (s *Store) rlockAll() func() {
	obsMergeReads.Inc()
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	return func() {
		for _, sh := range s.shards {
			sh.mu.RUnlock()
		}
	}
}

// Flows returns a snapshot of all flow metadata, ordered by first packet.
func (s *Store) Flows() []FlowMeta {
	unlock := s.rlockAll()
	defer unlock()
	total := 0
	for _, sh := range s.shards {
		total += len(sh.flows)
	}
	out := make([]FlowMeta, 0, total)
	for _, sh := range s.shards {
		for _, fm := range sh.flows {
			cp := *fm
			cp.pktIDs = append([]PacketID(nil), fm.pktIDs...)
			out = append(out, cp)
		}
	}
	sortFlows(out)
	return out
}

// sortFlows orders flow snapshots deterministically: by first packet time,
// ties broken by key hash — the shard-merge order every listing uses.
func sortFlows(out []FlowMeta) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Key.Hash() < out[j].Key.Hash()
	})
}

// AddEvents ingests complementary sensor events (already clock-corrected).
func (s *Store) AddEvents(evs []eventlog.Event) {
	s.eventsMu.Lock()
	defer s.eventsMu.Unlock()
	s.events = append(s.events, evs...)
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].TS < s.events[j].TS })
	for _, e := range evs {
		s.eventIndexBytes += uint64(24 + len(e.Message) + len(e.Host))
	}
}

// EventsBetween returns sensor events in [from, to).
func (s *Store) EventsBetween(from, to time.Duration) []eventlog.Event {
	s.eventsMu.RLock()
	defer s.eventsMu.RUnlock()
	lo := sort.Search(len(s.events), func(i int) bool { return s.events[i].TS >= from })
	hi := sort.Search(len(s.events), func(i int) bool { return s.events[i].TS >= to })
	out := make([]eventlog.Event, hi-lo)
	copy(out, s.events[lo:hi])
	return out
}

// Stats describes store volume — the E7 storage-accounting surface.
// Packets/DataBytes/IndexBytes describe the hot tier (the RAM-resident
// bytes the admission gate meters); the Cold* fields describe sealed
// on-disk segments, so the two tiers stay separately honest.
type Stats struct {
	Packets    uint64
	Flows      uint64
	Events     uint64
	DataBytes  uint64 // raw packet bytes (hot tier)
	IndexBytes uint64 // metadata/index overhead estimate (hot tier)
	Span       time.Duration

	// Cold tier (all zero when tiering is off).
	ColdPackets uint64
	ColdBytes   uint64 // compressed segment file bytes on disk
	Segments    uint64
}

// TotalBytes is data plus index plus cold segments — the full footprint
// across both tiers (identical to the old definition when tiering is off).
func (st Stats) TotalBytes() uint64 { return st.DataBytes + st.IndexBytes + st.ColdBytes }

// BytesPerSecond returns the storage accrual rate over the stored span.
func (st Stats) BytesPerSecond() float64 {
	if st.Span <= 0 {
		return 0
	}
	return float64(st.TotalBytes()) / st.Span.Seconds()
}

// ProjectRetention extrapolates the bytes needed to retain dur of traffic
// at the observed accrual rate (the paper's "10 Gbps upstream, data
// storage requirements of the order of a week" estimate).
func (st Stats) ProjectRetention(dur time.Duration) uint64 {
	return uint64(st.BytesPerSecond() * dur.Seconds())
}

// Stats returns current volume accounting.
func (s *Store) Stats() Stats {
	unlock := s.rlockAll()
	var st Stats
	first := time.Duration(1<<63 - 1)
	last := time.Duration(-1 << 62)
	for _, sh := range s.shards {
		st.Packets += uint64(len(sh.packets))
		st.Flows += uint64(len(sh.flows))
		st.DataBytes += sh.dataBytes
		st.IndexBytes += sh.indexBytes
		if n := len(sh.packets); n > 0 {
			if sh.packets[0].TS < first {
				first = sh.packets[0].TS
			}
			if sh.packets[n-1].TS > last {
				last = sh.packets[n-1].TS
			}
		}
	}
	unlock()
	if tr := s.tier.Load(); tr != nil {
		tr.mu.RLock()
		st.ColdPackets = tr.coldPackets
		st.ColdBytes = tr.coldBytes
		st.Segments = uint64(len(tr.segs))
		for _, sg := range tr.segs {
			if sg.meta.minTS < first {
				first = sg.meta.minTS
			}
			if sg.meta.maxTS > last {
				last = sg.meta.maxTS
			}
		}
		tr.mu.RUnlock()
	}
	if st.Packets+st.ColdPackets > 0 {
		st.Span = last - first
	}
	s.eventsMu.RLock()
	st.Events = uint64(len(s.events))
	st.IndexBytes += s.eventIndexBytes
	s.eventsMu.RUnlock()
	return st
}

// EvictBefore drops packets (and empty flows) older than ts, returning the
// number of packets evicted — the retention enforcement path. Shards are
// evicted independently; a concurrent reader may observe some shards
// trimmed before others.
//
// On a tiered store, eviction is seal-aware: the candidates are sealed
// into cold segments instead of destroyed, so the hot tier shrinks by the
// same amount but the history stays queryable (cold retention is the
// TierPolicy's Retain horizon, enforced by the compactor).
func (s *Store) EvictBefore(ts time.Duration) int {
	if tr := s.tier.Load(); tr != nil {
		n, _ := s.SealBefore(ts)
		return n
	}
	total := 0
	var freed uint64
	for _, sh := range s.shards {
		sh.lock()
		n, b := sh.evictBefore(ts)
		total += n
		freed += b
		sh.mu.Unlock()
	}
	// Occupancy shrinks with eviction so the admission gate reopens as
	// retention reclaims space.
	if total > 0 {
		s.totPackets.Add(^uint64(total) + 1)
		s.totBytes.Add(^freed + 1)
	}
	return total
}

func (sh *shard) evictBefore(ts time.Duration) (int, uint64) {
	cut := sort.Search(len(sh.packets), func(i int) bool { return sh.packets[i].TS >= ts })
	if cut == 0 {
		return 0, 0
	}
	evicted := sh.packets[:cut]
	var freed uint64
	for i := range evicted {
		freed += uint64(len(evicted[i].Data))
	}
	sh.dataBytes -= freed
	sh.packets = append([]StoredPacket(nil), sh.packets[cut:]...)
	// The evicted prefix is also an ID prefix (the slab is co-sorted), so
	// posting lists trim by the minimum surviving ID.
	minID := PacketID(1<<64 - 1)
	if len(sh.packets) > 0 {
		minID = sh.packets[0].ID
	}
	sh.indexBytes -= 8 * uint64(sh.index.evictBelow(minID))
	// Rebuild flow packet-ID lists lazily: drop flows that ended before ts.
	// A flow's packets all live in this shard, so the shard-local minimum
	// surviving ID bounds exactly the IDs this flow may still reference.
	for k, fm := range sh.flows {
		if fm.Last < ts {
			delete(sh.flows, k)
			continue
		}
		if fm.First < ts {
			minID := PacketID(0)
			if len(sh.packets) > 0 {
				minID = sh.packets[0].ID
			}
			ids := fm.pktIDs[:0]
			for _, id := range fm.pktIDs {
				if id >= minID {
					ids = append(ids, id)
				}
			}
			fm.pktIDs = ids
		}
	}
	return cut, freed
}
