// Package datastore implements the paper's §5 data store: "a single
// platform for collecting, storing, indexing, mining, and visualizing
// network data" — packet records with time and flow indexes, on-the-fly
// metadata, labels, linkage to complementary sensor events, a filter query
// language, and retention/storage accounting.
package datastore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"campuslab/internal/eventlog"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// PacketID identifies one stored packet.
type PacketID uint64

// StoredPacket is one packet record with its on-the-fly metadata (the
// parsed Summary), kept alongside the raw bytes.
type StoredPacket struct {
	ID      PacketID
	TS      time.Duration
	Link    uint16
	Summary packet.Summary
	Data    []byte
	// Label/Actor carry per-packet ground truth when the packet came
	// from a labeled generator (zero values otherwise). Actor marks the
	// packet's source as the malicious actor, not a victim response.
	Label traffic.Label
	Actor bool
}

// FlowKey is the canonical five-tuple a flow is indexed under.
type FlowKey = packet.FiveTuple

// FlowMeta is the per-flow aggregate the store maintains incrementally —
// the "extensive set of on-the-fly generated metadata".
type FlowMeta struct {
	Key          FlowKey
	First        time.Duration
	Last         time.Duration
	Packets      uint64
	Bytes        uint64
	PayloadBytes uint64
	TCPFlags     packet.TCPFlags
	DNSQueries   uint32
	DNSResponses uint32
	DNSAnyCount  uint32        // DNS messages with QTYPE=ANY (amplification tell)
	Label        traffic.Label // ground truth if registered, else benign
	Labeled      bool
	pktIDs       []PacketID
}

// PacketIDs returns the IDs of this flow's packets in arrival order.
func (m *FlowMeta) PacketIDs() []PacketID { return m.pktIDs }

// Store is the campus data store. Safe for one writer and many readers.
type Store struct {
	mu      sync.RWMutex
	packets []StoredPacket // time-ordered (ingest order)
	flows   map[FlowKey]*FlowMeta
	events  []eventlog.Event // time-ordered after AddEvents sorts

	dataBytes  uint64
	indexBytes uint64

	parser packet.FlowParser
	nextID PacketID
}

// New returns an empty store.
func New() *Store {
	return &Store{flows: make(map[FlowKey]*FlowMeta)}
}

// Ingest parses and stores one frame captured at ts on the given link.
// Frames must arrive in non-decreasing timestamp order (the capture
// pipeline guarantees this per tap; multi-tap ingest should merge first).
// Unparseable frames are stored with an empty summary so the "everything
// seen on the wire" contract holds.
func (s *Store) Ingest(ts time.Duration, link uint16, data []byte) PacketID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.packets); n > 0 && ts < s.packets[n-1].TS {
		// Clamp minor reordering rather than corrupt the time index.
		ts = s.packets[n-1].TS
	}
	id := s.nextID
	s.nextID++
	sp := StoredPacket{ID: id, TS: ts, Link: link, Data: data}
	_ = s.parser.Parse(data, &sp.Summary) // ErrNotIP etc: stored with partial summary
	s.packets = append(s.packets, sp)
	s.dataBytes += uint64(len(data))

	if sp.Summary.HasIP {
		key := sp.Summary.Tuple.Canonical()
		fm, ok := s.flows[key]
		if !ok {
			fm = &FlowMeta{Key: key, First: ts}
			s.flows[key] = fm
			s.indexBytes += 96 // rough per-flow index cost
		}
		fm.Last = ts
		fm.Packets++
		fm.Bytes += uint64(len(data))
		fm.PayloadBytes += uint64(sp.Summary.PayloadLen)
		fm.TCPFlags |= sp.Summary.TCPFlags
		if sp.Summary.IsDNS {
			if sp.Summary.DNSResponse {
				fm.DNSResponses++
			} else {
				fm.DNSQueries++
			}
			if sp.Summary.DNSQueryType == packet.DNSTypeANY {
				fm.DNSAnyCount++
			}
		}
		fm.pktIDs = append(fm.pktIDs, id)
		s.indexBytes += 8
	}
	return id
}

// IngestFrame stores a generator frame, registering its ground-truth label
// at both packet and flow granularity.
func (s *Store) IngestFrame(f *traffic.Frame) PacketID {
	id := s.Ingest(f.TS, 0, f.Data)
	if f.Label != traffic.LabelBenign {
		s.mu.Lock()
		if sp := s.locked(id); sp != nil {
			sp.Label = f.Label
			sp.Actor = f.Actor
			if sp.Summary.HasIP {
				if fm := s.flows[sp.Summary.Tuple.Canonical()]; fm != nil {
					fm.Label = f.Label
					fm.Labeled = true
				}
			}
		}
		s.mu.Unlock()
	}
	return id
}

func (s *Store) locked(id PacketID) *StoredPacket {
	i := sort.Search(len(s.packets), func(i int) bool { return s.packets[i].ID >= id })
	if i < len(s.packets) && s.packets[i].ID == id {
		return &s.packets[i]
	}
	return nil
}

// Packet returns a copy of the stored packet with the given ID.
func (s *Store) Packet(id PacketID) (StoredPacket, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sp := s.locked(id); sp != nil {
		return *sp, true
	}
	return StoredPacket{}, false
}

// LabelFlow registers ground truth (or an analyst label) for a flow.
func (s *Store) LabelFlow(key FlowKey, label traffic.Label) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fm, ok := s.flows[key.Canonical()]
	if !ok {
		return fmt.Errorf("datastore: no flow %v", key)
	}
	fm.Label = label
	fm.Labeled = true
	return nil
}

// Flow returns the metadata of the flow containing the tuple.
func (s *Store) Flow(key FlowKey) (FlowMeta, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fm, ok := s.flows[key.Canonical()]
	if !ok {
		return FlowMeta{}, false
	}
	out := *fm
	out.pktIDs = append([]PacketID(nil), fm.pktIDs...)
	return out, true
}

// Flows returns a snapshot of all flow metadata, ordered by first packet.
func (s *Store) Flows() []FlowMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]FlowMeta, 0, len(s.flows))
	for _, fm := range s.flows {
		cp := *fm
		cp.pktIDs = nil // bulk listing omits per-packet IDs
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Key.Hash() < out[j].Key.Hash()
	})
	return out
}

// AddEvents ingests complementary sensor events (already clock-corrected).
func (s *Store) AddEvents(evs []eventlog.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, evs...)
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].TS < s.events[j].TS })
	for _, e := range evs {
		s.indexBytes += uint64(24 + len(e.Message) + len(e.Host))
	}
}

// EventsBetween returns sensor events in [from, to).
func (s *Store) EventsBetween(from, to time.Duration) []eventlog.Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := sort.Search(len(s.events), func(i int) bool { return s.events[i].TS >= from })
	hi := sort.Search(len(s.events), func(i int) bool { return s.events[i].TS >= to })
	out := make([]eventlog.Event, hi-lo)
	copy(out, s.events[lo:hi])
	return out
}

// Stats describes store volume — the E7 storage-accounting surface.
type Stats struct {
	Packets    uint64
	Flows      uint64
	Events     uint64
	DataBytes  uint64 // raw packet bytes
	IndexBytes uint64 // metadata/index overhead estimate
	Span       time.Duration
}

// TotalBytes is data plus index.
func (st Stats) TotalBytes() uint64 { return st.DataBytes + st.IndexBytes }

// BytesPerSecond returns the storage accrual rate over the stored span.
func (st Stats) BytesPerSecond() float64 {
	if st.Span <= 0 {
		return 0
	}
	return float64(st.TotalBytes()) / st.Span.Seconds()
}

// ProjectRetention extrapolates the bytes needed to retain dur of traffic
// at the observed accrual rate (the paper's "10 Gbps upstream, data
// storage requirements of the order of a week" estimate).
func (st Stats) ProjectRetention(dur time.Duration) uint64 {
	return uint64(st.BytesPerSecond() * dur.Seconds())
}

// Stats returns current volume accounting.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Packets:    uint64(len(s.packets)),
		Flows:      uint64(len(s.flows)),
		Events:     uint64(len(s.events)),
		DataBytes:  s.dataBytes,
		IndexBytes: s.indexBytes,
	}
	if n := len(s.packets); n > 0 {
		st.Span = s.packets[n-1].TS - s.packets[0].TS
	}
	return st
}

// EvictBefore drops packets (and empty flows) older than ts, returning the
// number of packets evicted — the retention enforcement path.
func (s *Store) EvictBefore(ts time.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cut := sort.Search(len(s.packets), func(i int) bool { return s.packets[i].TS >= ts })
	if cut == 0 {
		return 0
	}
	evicted := s.packets[:cut]
	for i := range evicted {
		s.dataBytes -= uint64(len(evicted[i].Data))
	}
	s.packets = append([]StoredPacket(nil), s.packets[cut:]...)
	// Rebuild flow packet-ID lists lazily: drop flows that ended before ts.
	for k, fm := range s.flows {
		if fm.Last < ts {
			delete(s.flows, k)
			continue
		}
		if fm.First < ts {
			minID := PacketID(0)
			if len(s.packets) > 0 {
				minID = s.packets[0].ID
			}
			ids := fm.pktIDs[:0]
			for _, id := range fm.pktIDs {
				if id >= minID {
					ids = append(ids, id)
				}
			}
			fm.pktIDs = ids
		}
	}
	return cut
}
