package datastore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"campuslab/internal/traffic"
)

// walFuzzSeg builds a real segment's bytes (n records) for seeding.
func walFuzzSeg(f *testing.F, n int) []byte {
	f.Helper()
	dir := f.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, Fsync: FsyncNone})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(walFrames(2, i), nil); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	seg, err := NewestWALSegment(dir)
	if err != nil {
		f.Fatal(err)
	}
	b, err := os.ReadFile(seg)
	if err != nil {
		f.Fatal(err)
	}
	return b
}

// FuzzWALReplay drives replay with arbitrary segment tails. The first
// input byte picks how many real acked records precede the fuzz bytes;
// the rest is splatted after them as a simulated torn/corrupt tail.
// Invariants: replay never panics and never errors on a readable
// directory; it is deterministic; and whatever it applies always has the
// acked record stream as an exact prefix — corruption can cost the tail,
// never rewrite history.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{3})
	f.Add([]byte("CLWL\x00\x01\x00\x00\x00\x00\x00\x00\x00\x01"))
	f.Add(append([]byte{1}, walFuzzSeg(f, 2)...))
	f.Add(append([]byte{2}, bytes.Repeat([]byte{0xff}, 64)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		nValid := 0
		var tail []byte
		if len(data) > 0 {
			nValid = int(data[0]) % 4
			tail = data[1:]
		}
		w, err := OpenWAL(WALConfig{Dir: dir, Fsync: FsyncNone})
		if err != nil {
			t.Fatal(err)
		}
		var acked [][]traffic.Frame
		for i := 0; i < nValid; i++ {
			frames := walFrames(3, i)
			if err := w.Append(frames, nil); err != nil {
				t.Fatal(err)
			}
			acked = append(acked, frames)
		}
		w.Close()
		seg, err := NewestWALSegment(dir)
		if err != nil {
			t.Fatal(err)
		}
		fh, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(tail); err != nil {
			t.Fatal(err)
		}
		fh.Close()
		// A second, intact-looking segment after the corrupted one: replay
		// must not resurrect it past a tear (prefix rule), and must still
		// never panic on whatever the combination decodes to.
		if len(tail) > 0 && tail[0]%2 == 1 {
			os.WriteFile(filepath.Join(dir, segName(2)), tail, 0o644)
		}

		replay := func() [][]traffic.Frame {
			var got [][]traffic.Frame
			_, _, err := ReplayWAL(dir, func(frames []traffic.Frame, links []uint16) {
				cp := make([]traffic.Frame, len(frames))
				for i := range frames {
					cp[i] = frames[i]
					cp[i].Data = append([]byte(nil), frames[i].Data...)
				}
				got = append(got, cp)
			})
			if err != nil {
				t.Fatalf("replay error on readable dir: %v", err)
			}
			return got
		}
		got1, got2 := replay(), replay()
		if len(got1) != len(got2) {
			t.Fatalf("replay not deterministic: %d vs %d records", len(got1), len(got2))
		}
		if len(got1) < len(acked) {
			t.Fatalf("replay lost acked records: got %d, acked %d", len(got1), len(acked))
		}
		for i, frames := range acked {
			if len(got1[i]) != len(frames) {
				t.Fatalf("record %d: %d frames, acked %d", i, len(got1[i]), len(frames))
			}
			for j := range frames {
				g, w := got1[i][j], frames[j]
				if g.TS != w.TS || g.Label != w.Label || g.Actor != w.Actor || !bytes.Equal(g.Data, w.Data) {
					t.Fatalf("record %d frame %d diverged from acked stream", i, j)
				}
			}
		}
		for i := range got1 {
			for j := range got1[i] {
				if !bytes.Equal(got1[i][j].Data, got2[i][j].Data) {
					t.Fatalf("replay not deterministic at record %d", i)
				}
			}
		}
	})
}
