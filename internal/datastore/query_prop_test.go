package datastore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// genQueryExpr builds random filter expressions biased toward the shapes
// the planner cares about: indexable equality atoms mixed with range
// comparisons, flags, time bounds, negation and disjunction.
func genQueryExpr(r *rand.Rand, depth int) string {
	if depth <= 0 || r.Intn(3) == 0 {
		return genQueryAtom(r)
	}
	switch r.Intn(5) {
	case 0, 1:
		return genQueryExpr(r, depth-1) + " && " + genQueryExpr(r, depth-1)
	case 2:
		return genQueryExpr(r, depth-1) + " || " + genQueryExpr(r, depth-1)
	case 3:
		return "!(" + genQueryExpr(r, depth-1) + ")"
	default:
		return "(" + genQueryExpr(r, depth-1) + ")"
	}
}

var queryAtomLabels = []string{"benign", "dns-amp", "syn-flood"}

func genQueryAtom(r *rand.Rand) string {
	switch r.Intn(10) {
	case 0:
		return []string{"proto == udp", "proto == tcp", "proto == icmp", "proto == 0"}[r.Intn(4)]
	case 1:
		return fmt.Sprintf("dst.port == %d", []int{53, 80, 443, 4053, 0, 70000}[r.Intn(6)])
	case 2:
		return fmt.Sprintf("src.port == %d", r.Intn(70000))
	case 3:
		return "label == " + queryAtomLabels[r.Intn(len(queryAtomLabels))]
	case 4:
		return fmt.Sprintf("link == %d", r.Intn(3))
	case 5:
		return propFlags[r.Intn(len(propFlags))]
	case 6:
		f := propFields[r.Intn(len(propFields))]
		op := propOps[r.Intn(len(propOps))]
		return fmt.Sprintf("%s %s %d", f, op, r.Intn(70000))
	case 7:
		return fmt.Sprintf("ts >= %dms && ts < %dms", 200*r.Intn(8), 200*(8+r.Intn(8)))
	case 8:
		return "src.ip in 10.0.0.0/8"
	default:
		return "dns && dns.qtype == ANY"
	}
}

// TestPlannerScanPropertyEquivalence: for randomized expressions over
// randomized-enough stores, the index-assisted planner must return
// byte-identical results to the serial scan reference at every
// (shards, workers) combination — the query-engine analogue of the
// dataplane's DAG≡scan property test.
func TestPlannerScanPropertyEquivalence(t *testing.T) {
	frames := equivFrames(t)
	for _, shards := range []int{1, 4, 16} {
		st := NewSharded(shards)
		st.AddBatch(frames, 4)
		for _, workers := range []int{1, 4} {
			st.SetQueryWorkers(workers)
			r := rand.New(rand.NewSource(int64(1000*shards + workers)))
			indexedHits := 0
			for i := 0; i < 120; i++ {
				expr := genQueryExpr(r, 3)
				f, err := ParseFilter(expr)
				if err != nil {
					t.Fatalf("generated expression rejected: %q: %v", expr, err)
				}
				limit := 0
				if r.Intn(3) == 0 {
					limit = 1 + r.Intn(20)
				}
				st.SetScanQuery(true)
				want := st.Select(f, limit)
				wantN := st.Count(f)
				st.SetScanQuery(false)
				got := st.Select(f, limit)
				gotN := st.Count(f)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("shards=%d workers=%d: Select(%q, %d) diverged: reference %d pkts, planner %d",
						shards, workers, expr, limit, len(want), len(got))
				}
				if wantN != gotN {
					t.Fatalf("shards=%d workers=%d: Count(%q) diverged: reference %d, planner %d",
						shards, workers, expr, wantN, gotN)
				}
				if f.Indexable() && len(got) > 0 {
					indexedHits++
				}
			}
			if indexedHits == 0 {
				t.Fatalf("shards=%d workers=%d: no indexable expression produced hits — generator too weak", shards, workers)
			}
		}
	}
}
