package datastore

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
)

// Environment contract for the re-exec'd child of TestTierCrashKill9:
// the durable directory, and the seal/compact protocol stage at which the
// child SIGKILLs itself (tierTestHook).
const (
	tierCrashDirEnv   = "CAMPUSLAB_TIER_CRASH_DIR"
	tierCrashStageEnv = "CAMPUSLAB_TIER_CRASH_STAGE"
)

// tierCrashBatches is the exact acked workload: the child ingests and
// acks all of them (FsyncAlways) before it starts the tier mutation that
// kills it, so recovery owes every single one back.
const tierCrashBatches = 30

// TestTierCrashChildProcess is the child half of the tier kill -9 gate,
// selected by environment variable. It ingests a deterministic batch
// stream into a durable tiered store, acks each batch on stdout, then
// runs a seal (and for compact stages, a compaction) with a hook that
// SIGKILLs the process at the requested protocol stage.
func TestTierCrashChildProcess(t *testing.T) {
	dir := os.Getenv(tierCrashDirEnv)
	if dir == "" {
		t.Skip("child-process helper; driven by TestTierCrashKill9")
	}
	stage := os.Getenv(tierCrashStageEnv)
	st, _, err := Recover(DurableConfig{
		Dir: dir, Fsync: FsyncAlways, Shards: 2,
		Tier: TierPolicy{Dir: filepath.Join(dir, "tier"), SegmentPackets: 40, MinSealPackets: 1},
	})
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	out := bufio.NewWriter(os.Stdout)
	for i := 0; i < tierCrashBatches; i++ {
		if _, err := st.AddBatch(walFrames(5, i), 0); err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "acked %d\n", i)
		out.Flush()
	}
	if strings.HasPrefix(stage, "compact-") {
		// Two thin seals build the confetti the fatal compaction will merge.
		if _, err := st.SealHot(100); err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		if _, err := st.SealHot(50); err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
	}
	tierTestHook = func(s string) {
		if s == stage {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable; SIGKILL is not deliverable to a handler
		}
	}
	if strings.HasPrefix(stage, "compact-") {
		_, err = st.CompactTier()
	} else {
		_, err = st.SealHot(50)
	}
	if err != nil {
		fmt.Println("ERR", err)
	}
	fmt.Println("ERR survived the crash stage") // hook did not fire
	os.Exit(1)
}

// TestTierCrashKill9 is the tier crash gate: a child acks a fixed batch
// stream under FsyncAlways, then kill -9s itself inside the seal or
// compact protocol — after the segment files, and after the manifest
// commit. Recovery must hold exactly the acked stream, with no lost and
// no duplicated packets, and be query-identical to an untiered serial
// rebuild of the same batches.
func TestTierCrashKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	ref := NewSharded(2)
	for i := 0; i < tierCrashBatches; i++ {
		if _, err := ref.AddBatch(walFrames(5, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	want := tierFingerprint(t, ref)

	for _, stage := range []string{"seal-files", "seal-manifest", "compact-files", "compact-manifest"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "TestTierCrashChildProcess")
			cmd.Env = append(os.Environ(),
				tierCrashDirEnv+"="+dir, tierCrashStageEnv+"="+stage)
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			lastAcked := -1
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				if strings.HasPrefix(line, "ERR") {
					cmd.Process.Kill()
					t.Fatalf("child failed: %s", line)
				}
				if n, ok := strings.CutPrefix(line, "acked "); ok {
					if v, err := strconv.Atoi(n); err == nil {
						lastAcked = v
					}
				}
			}
			cmd.Wait() // child killed itself at the hook stage
			if lastAcked != tierCrashBatches-1 {
				t.Fatalf("child acked %d batches, want %d", lastAcked+1, tierCrashBatches)
			}

			st, _, err := Recover(DurableConfig{
				Dir: dir, Fsync: FsyncAlways, Shards: 2,
				Tier: TierPolicy{Dir: filepath.Join(dir, "tier"), SegmentPackets: 40, MinSealPackets: 1},
			})
			if err != nil {
				t.Fatalf("recovery after kill -9 at %s: %v", stage, err)
			}
			defer st.CloseWAL()
			got := tierFingerprint(t, st)
			if got.total != want.total {
				t.Fatalf("kill -9 at %s: recovered %d packets, acked stream has %d (lost or duplicated)",
					stage, got.total, want.total)
			}
			seen := make(map[PacketID]bool, len(got.scan))
			for _, sp := range got.scan {
				if seen[sp.ID] {
					t.Fatalf("kill -9 at %s: packet ID %d recovered twice", stage, sp.ID)
				}
				seen[sp.ID] = true
			}
			compareTierPrints(t, stage, want, got)

			// The recovered store must keep working: a fresh seal on top of
			// whatever generation survived, then a final full check.
			if _, err := st.SealHot(20); err != nil {
				t.Fatalf("post-recovery seal: %v", err)
			}
			if ts := st.TierStats(); ts.ColdPackets == 0 {
				t.Fatalf("post-recovery seal left cold tier empty: %+v", ts)
			}
			compareTierPrints(t, stage+" post-reseal", want, tierFingerprint(t, st))
		})
	}
}

// TestTierCrashRecoveredMatchesManifest: crashing between the manifest
// commit and the registry swap (the in-RAM step) must behave exactly like
// crashing after the whole seal — EnableTiering's watermark trim is the
// idempotent dedup.
func TestTierCrashSwapEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	// The "seal-manifest" stage in TestTierCrashKill9 already kills between
	// manifest and swap; this test asserts the on-disk layout is sane: the
	// manifest's segments all exist and parse, and no orphan temp files
	// remain after recovery.
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestTierCrashChildProcess")
	cmd.Env = append(os.Environ(),
		tierCrashDirEnv+"="+dir, tierCrashStageEnv+"="+"seal-manifest")
	out, _ := cmd.StdoutPipe()
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
	}
	cmd.Wait()

	tierDir := filepath.Join(dir, "tier")
	st, _, err := Recover(DurableConfig{
		Dir: dir, Fsync: FsyncAlways, Shards: 2,
		Tier: TierPolicy{Dir: tierDir, SegmentPackets: 40, MinSealPackets: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.CloseWAL()
	_, _, names, ok, err := loadManifest(tierDir)
	if err != nil || !ok {
		t.Fatalf("manifest after recovery: ok=%v err=%v", ok, err)
	}
	if len(names) == 0 {
		t.Fatal("seal-manifest crash should leave committed segments")
	}
	onDisk, err := filepath.Glob(filepath.Join(tierDir, "seg-*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	var diskNames []string
	for _, p := range onDisk {
		diskNames = append(diskNames, filepath.Base(p))
	}
	sort.Strings(names)
	sort.Strings(diskNames)
	if !reflect.DeepEqual(names, diskNames) {
		t.Fatalf("manifest/disk mismatch after recovery:\nmanifest %v\ndisk     %v", names, diskNames)
	}
	if tmps, _ := filepath.Glob(filepath.Join(tierDir, "*.tmp*")); len(tmps) != 0 {
		t.Fatalf("stale temp files survived recovery: %v", tmps)
	}
}
