package datastore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"campuslab/internal/traffic"
)

// walFrames builds n deterministic synthetic frames (not necessarily
// parseable packets — the WAL must round-trip arbitrary bytes).
func walFrames(n, seed int) []traffic.Frame {
	frames := make([]traffic.Frame, n)
	for i := range frames {
		data := make([]byte, 20+(seed+i)%80)
		for j := range data {
			data[j] = byte(seed + i + j)
		}
		frames[i] = traffic.Frame{
			TS:    time.Duration(i) * time.Millisecond,
			Data:  data,
			Label: traffic.Label((seed + i) % 3),
			Actor: i%2 == 0,
		}
	}
	return frames
}

// replayAll collects every replayed frame from dir.
func replayAll(t *testing.T, dir string) ([]traffic.Frame, []uint16, uint64, bool) {
	t.Helper()
	var frames []traffic.Frame
	var links []uint16
	records, clean, err := ReplayWAL(dir, func(fs []traffic.Frame, ls []uint16) {
		frames = append(frames, fs...)
		links = append(links, ls...)
	})
	if err != nil {
		t.Fatal(err)
	}
	return frames, links, records, clean
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := walFrames(50, 7)
	links := make([]uint16, len(want))
	for i := range links {
		links[i] = uint16(i % 4)
	}
	for i := 0; i < len(want); i += 10 {
		if err := w.Append(want[i:i+10], links[i:i+10]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, gotLinks, records, clean := replayAll(t, dir)
	if !clean {
		t.Fatal("clean replay reported torn")
	}
	if records != 5 {
		t.Fatalf("records = %d, want 5", records)
	}
	if len(got) != len(want) {
		t.Fatalf("frames = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].Data, want[i].Data) || got[i].TS != want[i].TS ||
			got[i].Label != want[i].Label || got[i].Actor != want[i].Actor {
			t.Fatalf("frame %d differs", i)
		}
		if gotLinks[i] != links[i] {
			t.Fatalf("link %d = %d, want %d", i, gotLinks[i], links[i])
		}
	}
}

func TestWALRotationAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation nearly every append.
	w, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 256, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := walFrames(40, 3)
	for i := range want {
		if err := w.Append(want[i:i+1], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(seqs))
	}
	got, _, records, clean := replayAll(t, dir)
	if !clean || records != 40 || len(got) != 40 {
		t.Fatalf("replay = (%d records, %d frames, clean=%v), want (40, 40, true)", records, len(got), clean)
	}
	for i := range want {
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("frame %d differs after rotation", i)
		}
	}
}

// appendN writes n single-frame records and returns the segment path.
func appendN(t *testing.T, dir string, n int) string {
	t.Helper()
	w, err := OpenWAL(WALConfig{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(n, 11)
	for i := range frames {
		if err := w.Append(frames[i:i+1], nil); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, segName(w.seq))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWALTornTailStopsCleanly(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 12} {
		dir := t.TempDir()
		path := appendN(t, dir, 8)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if cut >= len(data)-walHeaderSize {
			cut = len(data) - walHeaderSize - 1
		}
		// Tear the file mid-record: drop the last cut bytes.
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		frames, _, records, clean := replayAll(t, dir)
		if clean {
			t.Fatalf("cut=%d: torn tail reported clean", cut)
		}
		if records != 7 {
			t.Fatalf("cut=%d: replayed %d records, want 7 (all but torn last)", cut, records)
		}
		if len(frames) != 7 {
			t.Fatalf("cut=%d: %d frames", cut, len(frames))
		}
	}
}

func TestWALBitFlipStopsAtCorruption(t *testing.T) {
	dir := t.TempDir()
	path := appendN(t, dir, 8)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the file (inside some record payload).
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	frames, _, records, clean := replayAll(t, dir)
	if clean {
		t.Fatal("bit flip reported clean")
	}
	if records >= 8 {
		t.Fatalf("replayed %d records past corruption", records)
	}
	if uint64(len(frames)) != records {
		t.Fatalf("frames (%d) != records (%d): partial record applied", len(frames), records)
	}
}

func TestWALBadHeaderIgnored(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 3)
	// A second segment with a trashed header: replay stops before it.
	seqs, _ := listSegments(dir)
	next := seqs[len(seqs)-1] + 1
	if err := os.WriteFile(filepath.Join(dir, segName(next)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, records, clean := replayAll(t, dir)
	if clean || records != 3 {
		t.Fatalf("replay = (%d, clean=%v), want (3, false)", records, clean)
	}
}

func TestWALSegmentGapStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 256, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(30, 5)
	for i := range frames {
		if err := w.Append(frames[i:i+1], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := listSegments(dir)
	if len(seqs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(seqs))
	}
	// Remove a middle segment — simulates an interrupted truncation.
	if err := os.Remove(filepath.Join(dir, segName(seqs[1]))); err != nil {
		t.Fatal(err)
	}
	_, _, records, clean := replayAll(t, dir)
	if clean {
		t.Fatal("segment gap reported clean")
	}
	// Only the first segment's records may be applied: a prefix.
	first, _ := replaySegment(filepath.Join(dir, segName(seqs[0])), seqs[0], func(walBatch) {})
	if records != first {
		t.Fatalf("replayed %d records, want first segment's %d", records, first)
	}
}

func TestWALTruncateResetsLog(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 256, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(20, 9)
	for i := range frames {
		if err := w.Append(frames[i:i+1], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.records != 0 || w.bytes != 0 {
		t.Fatalf("lag after truncate: %d records, %d bytes", w.records, w.bytes)
	}
	// Appends after truncation replay alone.
	post := walFrames(4, 31)
	if err := w.Append(post, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, records, clean := replayAll(t, dir)
	if !clean || records != 1 || len(got) != 4 {
		t.Fatalf("post-truncate replay = (%d records, %d frames, clean=%v)", records, len(got), clean)
	}
	for i := range post {
		if !bytes.Equal(got[i].Data, post[i].Data) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestWALEmptyAndMissingDir(t *testing.T) {
	// Missing dir: clean empty replay.
	records, clean, err := ReplayWAL(filepath.Join(t.TempDir(), "nope"), func([]traffic.Frame, []uint16) {})
	if err != nil || !clean || records != 0 {
		t.Fatalf("missing dir: (%d, %v, %v)", records, clean, err)
	}
	// Empty dir likewise.
	records, clean, err = ReplayWAL(t.TempDir(), func([]traffic.Frame, []uint16) {})
	if err != nil || !clean || records != 0 {
		t.Fatalf("empty dir: (%d, %v, %v)", records, clean, err)
	}
}

func TestFsyncPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{
		{"always", FsyncAlways}, {"interval", FsyncInterval},
		{"", FsyncInterval}, {"none", FsyncNone}, {"NONE", FsyncNone},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
		if got.String() == "" {
			t.Errorf("%v has empty String()", got)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestDecodeRecordNeverPanics(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{0xff, 0xff, 0xff, 0xff},                   // absurd frame count
		{1, 0, 0, 0},                               // count 1, no frame
		{1, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0}, // short frame header
	}
	for i, payload := range cases {
		if _, err := decodeRecord(payload); !errors.Is(err, ErrWALCorrupt) {
			t.Errorf("case %d: want ErrWALCorrupt, got %v", i, err)
		}
	}
}

// storeBytes serializes a store for byte-identical comparison.
func storeBytes(t *testing.T, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRecoverReplaysAckedBatches(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{Dir: dir, Fsync: FsyncAlways, Shards: 4}

	st, rs, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.SnapshotPackets != 0 || rs.WALRecords != 0 {
		t.Fatalf("fresh dir recovered %+v", rs)
	}
	frames := walFrames(64, 13)
	if _, err := st.AddBatch(frames[:32], 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddBatch(frames[32:], 1); err != nil {
		t.Fatal(err)
	}
	ref := storeBytes(t, st)
	// No clean shutdown: the WAL alone must reconstruct the store.
	if err := st.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	st2, rs2, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.WALRecords != 2 || rs2.WALPackets != 64 || rs2.Torn {
		t.Fatalf("recovery stats %+v", rs2)
	}
	if !bytes.Equal(ref, storeBytes(t, st2)) {
		t.Fatal("recovered store differs from acknowledged state")
	}
	st2.CloseWAL()
}

func TestRecoverSnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{Dir: dir, Fsync: FsyncAlways, Shards: 4}
	st, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(60, 17)
	if _, err := st.AddBatch(frames[:30], 1); err != nil {
		t.Fatal(err)
	}
	// Checkpoint covers the first half; WAL holds the second.
	if err := st.CheckpointDir(dir); err != nil {
		t.Fatal(err)
	}
	if ws := st.WALStats(); !ws.Attached || ws.Records != 0 {
		t.Fatalf("WAL lag after checkpoint: %+v", ws)
	}
	if _, err := st.AddBatch(frames[30:], 1); err != nil {
		t.Fatal(err)
	}
	if ws := st.WALStats(); ws.Records != 1 {
		t.Fatalf("WAL lag = %d records, want 1", ws.Records)
	}
	ref := storeBytes(t, st)
	st.CloseWAL()

	st2, rs, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.SnapshotPackets != 30 || rs.WALPackets != 30 {
		t.Fatalf("recovery split %+v, want 30 + 30", rs)
	}
	if !bytes.Equal(ref, storeBytes(t, st2)) {
		t.Fatal("snapshot+WAL recovery differs from acknowledged state")
	}
	st2.CloseWAL()
}

func TestRecoverTornWALIsPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{Dir: dir, Fsync: FsyncAlways, Shards: 2}
	st, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(40, 19)
	for i := 0; i < 40; i += 10 {
		if _, err := st.AddBatch(frames[i:i+10], 1); err != nil {
			t.Fatal(err)
		}
	}
	st.CloseWAL()
	// Tear the newest segment's tail.
	seqs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(seqs[len(seqs)-1]))
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, rs, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Torn {
		t.Fatal("torn tail not reported")
	}
	if rs.WALRecords != 3 || rs.WALPackets != 30 {
		t.Fatalf("recovered %+v, want 3 records / 30 packets (prefix)", rs)
	}
	// The recovered store matches a reference built from the same prefix.
	ref := NewSharded(2)
	ref.addBatch(frames[:30], nil, 1)
	if !bytes.Equal(storeBytes(t, ref), storeBytes(t, st2)) {
		t.Fatal("torn recovery is not the acknowledged prefix")
	}
	st2.CloseWAL()
}

func TestRecoverTornThenCrashAgain(t *testing.T) {
	// The two-crash sequence: a torn tail is recovered, MORE batches are
	// acked, then a second crash. Recovery must surface every acked batch
	// from both generations — the first recovery seals the torn log
	// behind a checkpoint so the old tear can't mask the new segments.
	dir := t.TempDir()
	cfg := DurableConfig{Dir: dir, Fsync: FsyncAlways, Shards: 2}
	st, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(60, 29)
	if _, err := st.AddBatch(frames[:30], 1); err != nil {
		t.Fatal(err)
	}
	st.CloseWAL()
	// Tear: garbage appended to the live segment (a partial record the
	// crash never finished — it was never acked).
	seqs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(seqs[len(seqs)-1]))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("partial record garbage"))
	f.Close()

	st2, rs, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Torn || rs.WALPackets != 30 {
		t.Fatalf("first recovery %+v", rs)
	}
	// Second generation of acked batches, then crash again.
	if _, err := st2.AddBatch(frames[30:], 1); err != nil {
		t.Fatal(err)
	}
	ref := storeBytes(t, st2)
	st2.CloseWAL()

	st3, rs3, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs3.Torn {
		t.Fatalf("second recovery still torn: %+v", rs3)
	}
	if got := st3.Stats().Packets; got != 60 {
		t.Fatalf("packets after second crash = %d, want 60 (acked loss!)", got)
	}
	if !bytes.Equal(ref, storeBytes(t, st3)) {
		t.Fatal("second recovery differs from acknowledged state")
	}
	st3.CloseWAL()
}

func TestRecoverReshards(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Recover(DurableConfig{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddBatch(walFrames(32, 23), 1); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckpointDir(dir); err != nil {
		t.Fatal(err)
	}
	st.CloseWAL()
	st2, _, err := Recover(DurableConfig{Dir: dir, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.CloseWAL()
	if st2.NumShards() != 8 {
		t.Fatalf("shards = %d, want 8", st2.NumShards())
	}
	if st2.Stats().Packets != 32 {
		t.Fatalf("packets = %d, want 32", st2.Stats().Packets)
	}
}

func TestWALStickyError(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	// Close the underlying file out from under the WAL: the next append
	// must fail and wedge the log.
	w.f.Close()
	if err := w.Append(walFrames(1, 1), nil); err == nil {
		t.Fatal("append on closed file succeeded")
	}
	if w.Err() == nil {
		t.Fatal("sticky error not set")
	}
	if err := w.Append(walFrames(1, 2), nil); !errors.Is(err, w.Err()) {
		t.Fatal("wedged log accepted another append")
	}
}

func TestCheckpointRefusedOnWedgedWAL(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Recover(DurableConfig{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddBatch(walFrames(8, 3), 1); err != nil {
		t.Fatal(err)
	}
	// Wedge the WAL, then verify batched ingest surfaces the error and
	// refuses the ack.
	st.wal.Load().f.Close()
	if _, err := st.AddBatch(walFrames(8, 4), 1); err == nil {
		t.Fatal("acked a batch the wedged WAL never logged")
	}
	st.CloseWAL()
}

func TestCheckpointCrashBeforeTruncateNoDuplicates(t *testing.T) {
	// The nastiest checkpoint window: the snapshot's atomic rename lands
	// but the process dies before truncation, leaving WAL segments on
	// disk whose every record is already inside the snapshot. The
	// coverage stamp in the snapshot name must stop recovery from
	// replaying them on top of the data they are part of.
	dir := t.TempDir()
	cfg := DurableConfig{Dir: dir, Fsync: FsyncAlways, Shards: 2}
	st, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(60, 31)
	if _, err := st.AddBatch(frames[:20], 1); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckpointDir(dir); err != nil { // a completed checkpoint
		t.Fatal(err)
	}
	if _, err := st.AddBatch(frames[20:], 1); err != nil {
		t.Fatal(err)
	}
	// Crash mid-checkpoint: replicate CheckpointDir up to and including
	// the snapshot rename, then die before Truncate runs.
	w := st.wal.Load()
	if err := st.SaveFile(filepath.Join(dir, snapName(w.seq))); err != nil {
		t.Fatal(err)
	}
	ref := storeBytes(t, st)
	st.CloseWAL()

	st2, rs, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Torn {
		t.Fatalf("recovery reported torn: %+v", rs)
	}
	if rs.WALRecords != 0 {
		t.Fatalf("replayed %d covered records on top of the snapshot (duplicates)", rs.WALRecords)
	}
	if got := st2.Stats().Packets; got != 60 {
		t.Fatalf("packets = %d, want 60", got)
	}
	if !bytes.Equal(ref, storeBytes(t, st2)) {
		t.Fatal("recovered store diverged from acknowledged stream")
	}
	// New batches acked after the interrupted checkpoint must land in
	// segments the stamp does not cover — and survive the next crash.
	if _, err := st2.AddBatch(walFrames(10, 41), 1); err != nil {
		t.Fatal(err)
	}
	ref2 := storeBytes(t, st2)
	st2.CloseWAL()
	st3, rs3, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs3.WALRecords != 1 || !bytes.Equal(ref2, storeBytes(t, st3)) {
		t.Fatalf("post-crash batches lost (replayed %d records)", rs3.WALRecords)
	}
	st3.CloseWAL()
}

func TestCheckpointCrashMidTruncateNoDuplicates(t *testing.T) {
	// Same window, one step later: truncation got partway, removing the
	// oldest covered segment and dying — the surviving covered segments
	// are a contiguous suffix, exactly the shape a gap check can never
	// catch. The coverage stamp must skip them all.
	dir := t.TempDir()
	cfg := DurableConfig{Dir: dir, Fsync: FsyncAlways, Shards: 2, SegmentBytes: 256}
	st, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(40, 43)
	for i := 0; i < len(frames); i += 10 {
		if _, err := st.AddBatch(frames[i:i+10], 1); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("want >= 3 segments for a partial truncation, got %d", len(seqs))
	}
	w := st.wal.Load()
	if err := st.SaveFile(filepath.Join(dir, snapName(w.seq))); err != nil {
		t.Fatal(err)
	}
	ref := storeBytes(t, st)
	st.CloseWAL()
	// Truncation's first unlink (oldest segment) happened; then the kill.
	if err := os.Remove(filepath.Join(dir, segName(seqs[0]))); err != nil {
		t.Fatal(err)
	}

	st2, rs, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.WALRecords != 0 {
		t.Fatalf("replayed %d covered records (duplicates)", rs.WALRecords)
	}
	if !bytes.Equal(ref, storeBytes(t, st2)) {
		t.Fatal("recovered store diverged from acknowledged stream")
	}
	st2.CloseWAL()
}

func TestRecoverLegacySnapshotName(t *testing.T) {
	// Directories written before checkpoints were coverage-stamped hold a
	// bare snapshot.clds; Recover must still read it, and the next
	// checkpoint must upgrade the directory to the stamped layout.
	dir := t.TempDir()
	st := NewSharded(2)
	st.addBatch(walFrames(16, 37), nil, 1)
	if err := st.SaveFile(filepath.Join(dir, SnapshotName)); err != nil {
		t.Fatal(err)
	}
	ref := storeBytes(t, st)

	st2, rs, err := Recover(DurableConfig{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.SnapshotPackets != 16 {
		t.Fatalf("snapshot packets = %d, want 16", rs.SnapshotPackets)
	}
	if !bytes.Equal(ref, storeBytes(t, st2)) {
		t.Fatal("legacy snapshot recovery diverged")
	}
	if err := st2.CheckpointDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotName)); !os.IsNotExist(err) {
		t.Fatal("legacy snapshot not swept by the stamped checkpoint")
	}
	if _, covered, ok, _ := findSnapshot(dir); !ok || covered == 0 {
		t.Fatalf("stamped snapshot missing after checkpoint (ok=%v covered=%d)", ok, covered)
	}
	st2.CloseWAL()
}

func TestSerialIngestRefusesAckOnWedgedWAL(t *testing.T) {
	// The serial path shares the batched path's contract: a WAL failure
	// refuses the frame instead of acknowledging data that is neither
	// durable nor (any longer) stored.
	dir := t.TempDir()
	st, _, err := Recover(DurableConfig{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestFrame(&traffic.Frame{Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	st.wal.Load().f.Close() // wedge the log
	before := st.Stats().Packets
	if _, err := st.IngestFrame(&traffic.Frame{Data: []byte{4, 5, 6}}); err == nil {
		t.Fatal("acked a frame the wedged WAL never logged")
	}
	if got := st.Stats().Packets; got != before {
		t.Fatalf("refused frame still landed in memory (%d -> %d packets)", before, got)
	}
	st.CloseWAL()
}

func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{SnapshotName + ".tmp123", SnapshotName + ".tmp9", "other.file"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n := RemoveStaleTemps(dir, SnapshotName); n != 2 {
		t.Fatalf("removed %d temps, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "other.file")); err != nil {
		t.Fatal("unrelated file removed")
	}
}
