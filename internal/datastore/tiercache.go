package datastore

import (
	"container/list"
	"sync"
	"sync/atomic"

	"campuslab/internal/obs"
)

// The decoded-block cache: a bytes-bounded LRU over inflated data-column
// blocks, keyed by (segment seq, block index). Segment files are
// immutable and seqs are never reused, so a cached block can never go
// stale — invalidation (on compact/retain, when segment files are
// replaced or deleted) exists only to release memory promptly, not for
// correctness. TierPolicy.CacheBytes sizes it; 0 (the default) disables
// caching entirely and queries behave exactly as before.

// Cache traffic metrics for /metrics. Counters are also mirrored
// per-tier (tierCache fields) so tests and labd STATS can diff one
// store without scraping the process registry.
var (
	obsTierCacheHits      = obs.Default.Counter("campuslab_tier_cache_hits_total")
	obsTierCacheMisses    = obs.Default.Counter("campuslab_tier_cache_misses_total")
	obsTierCacheEvictions = obs.Default.Counter("campuslab_tier_cache_evictions_total")
	obsTierCacheBytes     = obs.Default.Gauge("campuslab_tier_cache_bytes")
	obsTierCacheEntries   = obs.Default.Gauge("campuslab_tier_cache_entries")
)

// blockKey identifies one decoded block: the segment's immutable file
// sequence number plus the block index within its data column. v1
// segments parse as a single block 0, so both formats share the cache.
type blockKey struct {
	seq   uint64
	block int
}

type cacheEnt struct {
	key blockKey
	buf []byte
}

// tierCache is the bounded LRU. One instance per tier; all methods are
// safe for concurrent use.
type tierCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	ll      *list.List // front = most recently used
	entries map[blockKey]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

func newTierCache(maxBytes int64) *tierCache {
	return &tierCache{
		max:     maxBytes,
		ll:      list.New(),
		entries: make(map[blockKey]*list.Element),
	}
}

func (c *tierCache) get(k blockKey) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if ok {
		c.ll.MoveToFront(e)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		obsTierCacheMisses.Inc()
		return nil, false
	}
	c.hits.Add(1)
	obsTierCacheHits.Inc()
	return e.Value.(*cacheEnt).buf, true
}

// put admits one decoded block, evicting from the cold end until the
// budget holds. Blocks larger than the whole budget are not admitted.
func (c *tierCache) put(k blockKey, buf []byte) {
	if int64(len(buf)) > c.max {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		// Racing fill of the same block: keep the incumbent.
		c.ll.MoveToFront(e)
		c.mu.Unlock()
		return
	}
	c.entries[k] = c.ll.PushFront(&cacheEnt{key: k, buf: buf})
	c.bytes += int64(len(buf))
	evicted := uint64(0)
	for c.bytes > c.max {
		back := c.ll.Back()
		ent := back.Value.(*cacheEnt)
		c.ll.Remove(back)
		delete(c.entries, ent.key)
		c.bytes -= int64(len(ent.buf))
		evicted++
	}
	c.publishLocked()
	c.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
		obsTierCacheEvictions.Add(evicted)
	}
}

// dropSegs invalidates every block belonging to the given segment seqs —
// called when compaction or retention removes their files.
func (c *tierCache) dropSegs(seqs map[uint64]bool) {
	if len(seqs) == 0 {
		return
	}
	c.mu.Lock()
	for k, e := range c.entries {
		if seqs[k.seq] {
			c.bytes -= int64(len(e.Value.(*cacheEnt).buf))
			c.ll.Remove(e)
			delete(c.entries, k)
		}
	}
	c.publishLocked()
	c.mu.Unlock()
}

func (c *tierCache) publishLocked() {
	obsTierCacheBytes.Set(float64(c.bytes))
	obsTierCacheEntries.Set(float64(c.ll.Len()))
}

// size reports the resident footprint.
func (c *tierCache) size() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, c.ll.Len()
}

// blockSource routes one segment's block fetches through the tier cache.
// A nil source (cache disabled, or a mutator path like compaction that
// must not pollute the cache) inflates directly.
type blockSource struct {
	cache *tierCache
	seq   uint64
}

func (bs *blockSource) block(d *segData, b int) ([]byte, error) {
	if bs == nil || bs.cache == nil {
		return d.inflateBlock(b)
	}
	k := blockKey{seq: bs.seq, block: b}
	if buf, ok := bs.cache.get(k); ok {
		return buf, nil
	}
	buf, err := d.inflateBlock(b)
	if err != nil {
		return nil, err
	}
	bs.cache.put(k, buf)
	return buf, nil
}
