//go:build !race

package datastore

const raceEnabled = false
