package datastore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"sort"
	"sync"
	"time"

	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// The cold tier's on-disk unit is the CLSG segment: an immutable,
// compressed, columnar encoding of one (TS, ID)-sorted run of packets.
// Layout (all fixed integers little-endian, varints unsigned LEB128):
//
//	header (48 bytes):
//	    magic "CLSG" | version u16 | reserved u16 | count u32 |
//	    minID u64 | maxID u64 | minTS i64 | maxTS i64 | header crc32
//	columns, in fixed order, each framed as
//	    colID u8 | encLen u32 | payload crc32 | payload:
//	  1 ids    first ID uvarint, then zigzag varint deltas (IDs follow
//	           the (TS, ID) sort, so deltas are near 1 but may be signed
//	           when concurrent serial ingest interleaved IDs across shards)
//	  2 ts     first TS zigzag varint, then uvarint deltas (TS is
//	           non-decreasing within a sorted run)
//	  3 actor  bit-packed, one bit per row, trailing bits zero
//	  4 data   v1: uvarint total raw bytes, per-row uvarint lengths, then
//	           one DEFLATE stream of the concatenated packet bytes.
//	           v2: uvarint block rows | uvarint block count | uvarint total
//	           raw bytes | per-row uvarint lengths | per-block uvarint
//	           compressed lengths | the blocks' DEFLATE streams,
//	           concatenated. Block b covers rows [b*blockRows,
//	           (b+1)*blockRows) and inflates independently, so a selective
//	           query decompresses only the blocks its candidate rows land
//	           in instead of the whole column.
//	  5 index  the shard posting-list families, re-based to row positions:
//	           for proto/src.port/dst.port/link/label, ascending values
//	           each with an ascending delta-coded row list; then the six
//	           boolean-flag lists. The value families partition the rows,
//	           so this section doubles as the zone map's value sets.
//	  6 dict   (v2 only) dictionary encoding of the link and label
//	           columns: per family, uvarint distinct-value count, the
//	           ascending values, then ceil(log2 n)-bit codes bit-packed
//	           LSB-first, one per row, trailing bits zero. Gives O(1)
//	           per-row access for selective decode — the v1 reader instead
//	           inverts the index column into O(count) scatter arrays.
//
// Per-packet Summary metadata is NOT stored: decode re-parses the raw
// bytes with the same allocation-free parser ingest used, which is
// deterministic, so decoded rows are byte-identical to what was sealed.
//
// Column CRCs verify lazily, memoized per column on first access, so a
// query that never touches a column never pays its checksum; the
// attach-time path (openSegMeta) still verifies every column eagerly.
// Every decode validates structure strictly (sorted runs, total
// partitions, exact column lengths, no trailing bytes) and every
// corruption — CRC mismatch, truncation, bit flips — surfaces as an error
// wrapping ErrSegmentCorrupt, never a panic or a silently wrong row.

const (
	segMagic    = "CLSG"
	segVersion1 = 1
	segVersion2 = 2

	segColIDs   = 1
	segColTS    = 2
	segColActor = 3
	segColData  = 4
	segColIndex = 5
	segColDict  = 6
	segNumCols  = 6 // v2; v1 blobs carry columns 1..5

	segHeaderSize = 48
	// segBlockRows is the v2 writer's rows per independently-compressed
	// data block: small enough that a needle query inflates a sliver,
	// large enough that DEFLATE still sees real context.
	segBlockRows = 32
	// segMaxCount bounds rows per segment (sanity cap well above any
	// policy's SegmentPackets); segMaxData bounds the decompressed data
	// column; segMaxPacket matches the snapshot/WAL per-packet cap.
	segMaxCount  = 1 << 22
	segMaxData   = 1 << 30
	segMaxPacket = 1 << 20
)

// ErrSegmentCorrupt reports a segment that failed structural or checksum
// validation. Every decode error wraps it.
var ErrSegmentCorrupt = errors.New("datastore: corrupt segment")

func segErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSegmentCorrupt, fmt.Sprintf(format, args...))
}

// zigzag maps signed deltas onto unsigned varint space.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }

// segFamilies are the indexed value families, in file order. The position
// in this array is the "family index" used throughout.
var segFamilyKinds = [5]ixKind{ixProto, ixSrcPort, ixDstPort, ixLink, ixLabel}

// segFamilyMax is each family's value domain bound (inclusive).
var segFamilyMax = [5]uint64{0xff, 0xffff, 0xffff, 0xffff, 0xff}

// segFamilyIndex maps a planner key kind to its family index (-1 when the
// kind is not a value family, i.e. ixFlag).
func segFamilyIndex(kind ixKind) int {
	for i, k := range segFamilyKinds {
		if k == kind {
			return i
		}
	}
	return -1
}

// segMeta is the resident per-segment metadata: row count, ID/TS bounds,
// and the zone map. Everything queries need to prune a segment without
// touching its columns.
type segMeta struct {
	count        int
	minID, maxID PacketID
	minTS, maxTS time.Duration
	zone         segZone
}

// segZone is a segment's zone map: per indexed family, the exact sorted
// set of distinct values (up to segZoneMaxVals) or a min/max range beyond
// that, plus flag presence. mayMatch answers "could any row satisfy all of
// the plan's equality keys" without reading a column.
type segZone struct {
	vals     [5][]uint64
	min, max [5]uint64
	overflow [5]bool
	flags    [numFlags]bool
}

// segZoneMaxVals caps the exact value set a zone map keeps resident per
// family; higher-cardinality families degrade to a min/max range.
const segZoneMaxVals = 1024

// mayMatch reports whether the segment could contain a row satisfying all
// the plan's indexed equality conjuncts. False is a proof of absence;
// true only means "must decode to know".
func (z *segZone) mayMatch(keys []ixRef) bool {
	for _, k := range keys {
		if k.kind == ixFlag {
			if k.val >= numFlags || !z.flags[k.val] {
				return false
			}
			continue
		}
		fi := segFamilyIndex(k.kind)
		if fi < 0 {
			continue
		}
		if k.val > segFamilyMax[fi] {
			return false
		}
		if z.overflow[fi] {
			if k.val < z.min[fi] || k.val > z.max[fi] {
				return false
			}
			continue
		}
		vs := z.vals[fi]
		i := sort.Search(len(vs), func(i int) bool { return vs[i] >= k.val })
		if i >= len(vs) || vs[i] != k.val {
			return false
		}
	}
	return true
}

// segIndex is a decoded index column: the posting-list families re-based
// to row positions within the segment.
type segIndex struct {
	fams  [5]map[uint64][]uint32
	flags [numFlags][]uint32
}

func newSegIndex() *segIndex {
	ix := &segIndex{}
	for i := range ix.fams {
		ix.fams[i] = make(map[uint64][]uint32)
	}
	return ix
}

// lookup returns the row list for one planner key (nil when absent).
func (ix *segIndex) lookup(ref ixRef) []uint32 {
	if ref.kind == ixFlag {
		if ref.val >= numFlags {
			return nil
		}
		return ix.flags[ref.val]
	}
	fi := segFamilyIndex(ref.kind)
	if fi < 0 {
		return nil
	}
	return ix.fams[fi][ref.val]
}

// scatter inverts one total value family into a per-row value array.
// Valid only for families validated to partition the rows (decodeIndex
// enforces this for all five).
func (ix *segIndex) scatter(fi, count int) []uint64 {
	out := make([]uint64, count)
	for v, rows := range ix.fams[fi] {
		for _, r := range rows {
			out[r] = v
		}
	}
	return out
}

// zone derives the resident zone map from a decoded (or freshly built)
// index.
func (ix *segIndex) zone() segZone {
	var z segZone
	for fi := range ix.fams {
		vals := make([]uint64, 0, len(ix.fams[fi]))
		for v := range ix.fams[fi] {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if len(vals) > 0 {
			z.min[fi], z.max[fi] = vals[0], vals[len(vals)-1]
		}
		if len(vals) > segZoneMaxVals {
			z.overflow[fi] = true
		} else {
			z.vals[fi] = vals
		}
	}
	for fl := range ix.flags {
		z.flags[fl] = len(ix.flags[fl]) > 0
	}
	return z
}

// buildSegIndex indexes a row run exactly like postings.add does for a
// shard slab, keyed by row position instead of PacketID.
func buildSegIndex(rows []StoredPacket) *segIndex {
	ix := newSegIndex()
	for i := range rows {
		sp := &rows[i]
		r := uint32(i)
		ix.fams[0][uint64(sp.Summary.Tuple.Proto)] = append(ix.fams[0][uint64(sp.Summary.Tuple.Proto)], r)
		ix.fams[1][uint64(sp.Summary.Tuple.SrcPort)] = append(ix.fams[1][uint64(sp.Summary.Tuple.SrcPort)], r)
		ix.fams[2][uint64(sp.Summary.Tuple.DstPort)] = append(ix.fams[2][uint64(sp.Summary.Tuple.DstPort)], r)
		ix.fams[3][uint64(sp.Link)] = append(ix.fams[3][uint64(sp.Link)], r)
		ix.fams[4][uint64(sp.Label)] = append(ix.fams[4][uint64(sp.Label)], r)
		for fl, on := range [numFlags]bool{
			flagIP:      sp.Summary.HasIP,
			flagTCP:     sp.Summary.HasTCP,
			flagUDP:     sp.Summary.HasUDP,
			flagICMP:    sp.Summary.HasICMP,
			flagDNS:     sp.Summary.IsDNS,
			flagDNSResp: sp.Summary.DNSResponse,
		} {
			if on {
				ix.flags[fl] = append(ix.flags[fl], r)
			}
		}
	}
	return ix
}

// appendRowList delta-codes one ascending row list.
func appendRowList(b []byte, rows []uint32) []byte {
	b = binary.AppendUvarint(b, uint64(len(rows)))
	for j, r := range rows {
		if j == 0 {
			b = binary.AppendUvarint(b, uint64(r))
		} else {
			b = binary.AppendUvarint(b, uint64(r-rows[j-1]))
		}
	}
	return b
}

// encode serializes the index column canonically: families in fixed
// order, values ascending, rows delta-coded.
func (ix *segIndex) encode() []byte {
	var b []byte
	for fi := range ix.fams {
		vals := make([]uint64, 0, len(ix.fams[fi]))
		for v := range ix.fams[fi] {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		b = binary.AppendUvarint(b, uint64(len(vals)))
		for _, v := range vals {
			b = binary.AppendUvarint(b, v)
			b = appendRowList(b, ix.fams[fi][v])
		}
	}
	for fl := range ix.flags {
		b = appendRowList(b, ix.flags[fl])
	}
	return b
}

// putBits / getBits pack fixed-width codes LSB-first, matching the actor
// column's bit order.
func putBits(dst []byte, bitOff, width int, v uint64) {
	for w := 0; w < width; w++ {
		if v&(1<<w) != 0 {
			dst[(bitOff+w)/8] |= 1 << ((bitOff + w) % 8)
		}
	}
}

func getBits(src []byte, bitOff, width int) uint64 {
	var v uint64
	for w := 0; w < width; w++ {
		if src[(bitOff+w)/8]&(1<<((bitOff+w)%8)) != 0 {
			v |= 1 << w
		}
	}
	return v
}

// segDictFams are the two dictionary-encoded families (their segFamily
// indices): links and labels, the columns rowsAt needs per-row.
var segDictFams = [2]int{3, 4}

func segDictValue(sp *StoredPacket, fam int) uint64 {
	if fam == 0 {
		return uint64(sp.Link)
	}
	return uint64(sp.Label)
}

// encodeDict serializes the v2 dictionary column for the link and label
// families: distinct ascending values, then bit-packed per-row codes.
func encodeDict(rows []StoredPacket) []byte {
	var b []byte
	for fam := range segDictFams {
		set := make(map[uint64]struct{})
		for i := range rows {
			set[segDictValue(&rows[i], fam)] = struct{}{}
		}
		vals := make([]uint64, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		code := make(map[uint64]uint64, len(vals))
		for i, v := range vals {
			code[v] = uint64(i)
		}
		b = binary.AppendUvarint(b, uint64(len(vals)))
		for _, v := range vals {
			b = binary.AppendUvarint(b, v)
		}
		if width := bits.Len(uint(len(vals) - 1)); width > 0 {
			packed := make([]byte, (len(rows)*width+7)/8)
			for i := range rows {
				putBits(packed, i*width, width, code[segDictValue(&rows[i], fam)])
			}
			b = append(b, packed...)
		}
	}
	return b
}

// segDict is a decoded dictionary column: per family, the value table,
// the code width and the packed codes. at() is the O(1) per-row accessor.
type segDict struct {
	vals  [2][]uint64
	width [2]int
	codes [2][]byte
}

func (d *segDict) at(fam, row int) uint64 {
	if d.width[fam] == 0 {
		return d.vals[fam][0]
	}
	return d.vals[fam][getBits(d.codes[fam], row*d.width[fam], d.width[fam])]
}

// decodeDict decodes and validates the dictionary column: per family,
// ascending in-domain values, every code in range, every value used, and
// zero trailing bits — so a valid dict always re-encodes canonically.
func (sb *segBlob) decodeDict() (*segDict, error) {
	payload, err := sb.col(segColDict)
	if err != nil {
		return nil, err
	}
	r := &segReader{b: payload}
	d := &segDict{}
	for fam, fi := range segDictFams {
		nd, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nd == 0 || nd > uint64(sb.count) {
			return nil, segErr("dict family %d claims %d values for %d rows", fam, nd, sb.count)
		}
		vals := make([]uint64, nd)
		for i := range vals {
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if i > 0 && v <= vals[i-1] {
				return nil, segErr("dict family %d values not ascending", fam)
			}
			if v > segFamilyMax[fi] {
				return nil, segErr("dict family %d value %d out of domain", fam, v)
			}
			vals[i] = v
		}
		width := bits.Len(uint(nd - 1))
		if width > 0 {
			nbytes := (sb.count*width + 7) / 8
			if len(payload)-r.off < nbytes {
				return nil, segErr("dict family %d codes truncated", fam)
			}
			codes := payload[r.off : r.off+nbytes]
			r.off += nbytes
			used := make([]bool, nd)
			for i := 0; i < sb.count; i++ {
				c := getBits(codes, i*width, width)
				if c >= nd {
					return nil, segErr("dict family %d row %d code %d out of range", fam, i, c)
				}
				used[c] = true
			}
			for c, u := range used {
				if !u {
					return nil, segErr("dict family %d value %d unused", fam, vals[c])
				}
			}
			for bit := sb.count * width; bit < nbytes*8; bit++ {
				if codes[bit/8]&(1<<(bit%8)) != 0 {
					return nil, segErr("nonzero trailing dict bits in family %d", fam)
				}
			}
			d.codes[fam] = codes
		}
		d.vals[fam] = vals
		d.width[fam] = width
	}
	if !r.done() {
		return nil, segErr("trailing bytes in dict column")
	}
	return d, nil
}

// appendColumn frames one column: id, length, payload CRC, payload.
func appendColumn(dst []byte, colID byte, payload []byte) []byte {
	var hdr [9]byte
	hdr[0] = colID
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// encodeSegment serializes one (TS, ID)-sorted, strictly increasing row
// run into a CLSG v2 blob (blocked data column + dictionary column),
// returning the blob and the resident metadata. The encoding is
// canonical: the same rows always produce the same bytes.
func encodeSegment(rows []StoredPacket) ([]byte, segMeta, error) {
	return encodeSegmentVer(rows, segVersion2)
}

// encodeSegmentV1 writes the legacy single-stream format, byte-identical
// to what pre-v2 builds produced — kept so mixed-version tiers stay
// writable for tests, benchmarks and downgrades.
func encodeSegmentV1(rows []StoredPacket) ([]byte, segMeta, error) {
	return encodeSegmentVer(rows, segVersion1)
}

func encodeSegmentVer(rows []StoredPacket, version uint16) ([]byte, segMeta, error) {
	var meta segMeta
	n := len(rows)
	if n == 0 {
		return nil, meta, segErr("empty row run")
	}
	if n > segMaxCount {
		return nil, meta, segErr("%d rows exceeds cap", n)
	}
	minID, maxID := rows[0].ID, rows[0].ID
	var totalRaw uint64
	for i := range rows {
		if i > 0 {
			prev, cur := &rows[i-1], &rows[i]
			if cur.TS < prev.TS || (cur.TS == prev.TS && cur.ID <= prev.ID) {
				return nil, meta, segErr("rows not strictly (TS, ID) sorted at %d", i)
			}
		}
		if rows[i].ID < minID {
			minID = rows[i].ID
		}
		if rows[i].ID > maxID {
			maxID = rows[i].ID
		}
		if len(rows[i].Data) > segMaxPacket {
			return nil, meta, segErr("row %d data %d bytes exceeds cap", i, len(rows[i].Data))
		}
		totalRaw += uint64(len(rows[i].Data))
	}
	if totalRaw > segMaxData {
		return nil, meta, segErr("data column %d bytes exceeds cap", totalRaw)
	}
	meta.count = n
	meta.minID, meta.maxID = minID, maxID
	meta.minTS, meta.maxTS = rows[0].TS, rows[n-1].TS

	ids := binary.AppendUvarint(nil, uint64(rows[0].ID))
	for i := 1; i < n; i++ {
		ids = binary.AppendUvarint(ids, zigzag(int64(rows[i].ID)-int64(rows[i-1].ID)))
	}
	tsc := binary.AppendUvarint(nil, zigzag(int64(rows[0].TS)))
	for i := 1; i < n; i++ {
		tsc = binary.AppendUvarint(tsc, uint64(rows[i].TS-rows[i-1].TS))
	}
	act := make([]byte, (n+7)/8)
	for i := range rows {
		if rows[i].Actor {
			act[i/8] |= 1 << (i % 8)
		}
	}
	var data []byte
	if version >= segVersion2 {
		nblocks := (n + segBlockRows - 1) / segBlockRows
		data = binary.AppendUvarint(nil, segBlockRows)
		data = binary.AppendUvarint(data, uint64(nblocks))
		data = binary.AppendUvarint(data, totalRaw)
		for i := range rows {
			data = binary.AppendUvarint(data, uint64(len(rows[i].Data)))
		}
		var streams bytes.Buffer
		compLens := make([]int, nblocks)
		fw, err := flate.NewWriter(&streams, flate.DefaultCompression)
		if err != nil {
			return nil, meta, err
		}
		for b := 0; b < nblocks; b++ {
			start := streams.Len()
			fw.Reset(&streams)
			hi := (b + 1) * segBlockRows
			if hi > n {
				hi = n
			}
			for i := b * segBlockRows; i < hi; i++ {
				if _, err := fw.Write(rows[i].Data); err != nil {
					return nil, meta, err
				}
			}
			if err := fw.Close(); err != nil {
				return nil, meta, err
			}
			compLens[b] = streams.Len() - start
		}
		for _, cl := range compLens {
			data = binary.AppendUvarint(data, uint64(cl))
		}
		data = append(data, streams.Bytes()...)
	} else {
		data = binary.AppendUvarint(nil, totalRaw)
		for i := range rows {
			data = binary.AppendUvarint(data, uint64(len(rows[i].Data)))
		}
		var blob bytes.Buffer
		fw, err := flate.NewWriter(&blob, flate.DefaultCompression)
		if err != nil {
			return nil, meta, err
		}
		for i := range rows {
			if _, err := fw.Write(rows[i].Data); err != nil {
				return nil, meta, err
			}
		}
		if err := fw.Close(); err != nil {
			return nil, meta, err
		}
		data = append(data, blob.Bytes()...)
	}

	ix := buildSegIndex(rows)
	meta.zone = ix.zone()
	ixb := ix.encode()
	var dict []byte
	if version >= segVersion2 {
		dict = encodeDict(rows)
	}

	out := make([]byte, 0, segHeaderSize+len(ids)+len(tsc)+len(act)+len(data)+len(ixb)+len(dict)+6*9)
	out = append(out, segMagic...)
	out = binary.LittleEndian.AppendUint16(out, version)
	out = binary.LittleEndian.AppendUint16(out, 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	out = binary.LittleEndian.AppendUint64(out, uint64(minID))
	out = binary.LittleEndian.AppendUint64(out, uint64(maxID))
	out = binary.LittleEndian.AppendUint64(out, uint64(meta.minTS))
	out = binary.LittleEndian.AppendUint64(out, uint64(meta.maxTS))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out[:44]))
	out = appendColumn(out, segColIDs, ids)
	out = appendColumn(out, segColTS, tsc)
	out = appendColumn(out, segColActor, act)
	out = appendColumn(out, segColData, data)
	out = appendColumn(out, segColIndex, ixb)
	if version >= segVersion2 {
		out = appendColumn(out, segColDict, dict)
	}
	return out, meta, nil
}

// segBlob is a parsed segment: header fields plus the framed column
// payloads. Framing (magic, version, column order, lengths, no trailing
// bytes) is validated eagerly; per-column CRCs verify lazily on first
// access and are memoized, so pruned queries touch as little as possible.
// A segBlob is not safe for concurrent use — each query call parses its
// own.
type segBlob struct {
	version      int
	count        int
	minID, maxID PacketID
	minTS, maxTS time.Duration
	cols         [segNumCols + 1][]byte
	colSums      [segNumCols + 1]uint32
	colOK        [segNumCols + 1]bool
}

func (sb *segBlob) numCols() int {
	if sb.version == segVersion1 {
		return 5
	}
	return segNumCols
}

// col returns one column payload, verifying its CRC on first access.
func (sb *segBlob) col(id int) ([]byte, error) {
	if !sb.colOK[id] {
		if got := crc32.ChecksumIEEE(sb.cols[id]); got != sb.colSums[id] {
			return nil, segErr("column %d checksum %08x != %08x", id, got, sb.colSums[id])
		}
		sb.colOK[id] = true
	}
	return sb.cols[id], nil
}

// verifyAll checks every column CRC — the attach-time strictness the
// lazy query path skips.
func (sb *segBlob) verifyAll() error {
	for id := segColIDs; id <= sb.numCols(); id++ {
		if _, err := sb.col(id); err != nil {
			return err
		}
	}
	return nil
}

// parseSegment validates the header and the column framing (magic,
// version, counts, column order and lengths, no trailing bytes) without
// decoding or checksumming any column payload.
func parseSegment(b []byte) (*segBlob, error) {
	if len(b) < segHeaderSize {
		return nil, segErr("short header (%d bytes)", len(b))
	}
	if string(b[:4]) != segMagic {
		return nil, segErr("bad magic %q", b[:4])
	}
	v := binary.LittleEndian.Uint16(b[4:6])
	if v != segVersion1 && v != segVersion2 {
		return nil, segErr("unsupported version %d", v)
	}
	if binary.LittleEndian.Uint16(b[6:8]) != 0 {
		return nil, segErr("nonzero reserved field")
	}
	if got, want := crc32.ChecksumIEEE(b[:44]), binary.LittleEndian.Uint32(b[44:48]); got != want {
		return nil, segErr("header checksum %08x != %08x", got, want)
	}
	sb := &segBlob{
		version: int(v),
		count:   int(binary.LittleEndian.Uint32(b[8:12])),
		minID:   PacketID(binary.LittleEndian.Uint64(b[12:20])),
		maxID:   PacketID(binary.LittleEndian.Uint64(b[20:28])),
		minTS:   time.Duration(binary.LittleEndian.Uint64(b[28:36])),
		maxTS:   time.Duration(binary.LittleEndian.Uint64(b[36:44])),
	}
	if sb.count <= 0 || sb.count > segMaxCount {
		return nil, segErr("row count %d out of range", sb.count)
	}
	off := segHeaderSize
	for want := byte(1); want <= byte(sb.numCols()); want++ {
		if len(b)-off < 9 {
			return nil, segErr("truncated at column %d frame", want)
		}
		if b[off] != want {
			return nil, segErr("column %d out of order (got id %d)", want, b[off])
		}
		n := int(binary.LittleEndian.Uint32(b[off+1 : off+5]))
		sum := binary.LittleEndian.Uint32(b[off+5 : off+9])
		off += 9
		if n > len(b)-off {
			return nil, segErr("column %d claims %d bytes, %d remain", want, n, len(b)-off)
		}
		sb.cols[want] = b[off : off+n]
		sb.colSums[want] = sum
		off += n
	}
	if off != len(b) {
		return nil, segErr("%d trailing bytes", len(b)-off)
	}
	return sb, nil
}

// segReader walks one column payload's varints with bounds checking.
type segReader struct {
	b   []byte
	off int
}

func (r *segReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, segErr("bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *segReader) done() bool { return r.off == len(r.b) }

// decodeTimeID decodes and cross-validates the ID and TS columns: the
// (TS, ID) sequence must be strictly increasing and the bounds must match
// the header.
func (sb *segBlob) decodeTimeID() ([]PacketID, []time.Duration, error) {
	idCol, err := sb.col(segColIDs)
	if err != nil {
		return nil, nil, err
	}
	tsCol, err := sb.col(segColTS)
	if err != nil {
		return nil, nil, err
	}
	idr := &segReader{b: idCol}
	tsr := &segReader{b: tsCol}
	ids := make([]PacketID, sb.count)
	tss := make([]time.Duration, sb.count)
	v, err := idr.uvarint()
	if err != nil {
		return nil, nil, err
	}
	ids[0] = PacketID(v)
	if v, err = tsr.uvarint(); err != nil {
		return nil, nil, err
	}
	tss[0] = time.Duration(unzigzag(v))
	minID, maxID := ids[0], ids[0]
	for i := 1; i < sb.count; i++ {
		if v, err = idr.uvarint(); err != nil {
			return nil, nil, err
		}
		ids[i] = PacketID(uint64(ids[i-1]) + uint64(unzigzag(v)))
		if v, err = tsr.uvarint(); err != nil {
			return nil, nil, err
		}
		tss[i] = tss[i-1] + time.Duration(v)
		if tss[i] < tss[i-1] || (tss[i] == tss[i-1] && ids[i] <= ids[i-1]) {
			return nil, nil, segErr("rows not strictly (TS, ID) sorted at %d", i)
		}
		if ids[i] < minID {
			minID = ids[i]
		}
		if ids[i] > maxID {
			maxID = ids[i]
		}
	}
	if !idr.done() || !tsr.done() {
		return nil, nil, segErr("trailing bytes in id/ts column")
	}
	if minID != sb.minID || maxID != sb.maxID {
		return nil, nil, segErr("ID bounds [%d,%d] disagree with header [%d,%d]", minID, maxID, sb.minID, sb.maxID)
	}
	if tss[0] != sb.minTS || tss[sb.count-1] != sb.maxTS {
		return nil, nil, segErr("TS bounds disagree with header")
	}
	return ids, tss, nil
}

// decodeActor decodes the bit-packed actor column.
func (sb *segBlob) decodeActor() ([]byte, error) {
	act, err := sb.col(segColActor)
	if err != nil {
		return nil, err
	}
	if len(act) != (sb.count+7)/8 {
		return nil, segErr("actor column %d bytes, want %d", len(act), (sb.count+7)/8)
	}
	if rem := sb.count % 8; rem != 0 && act[len(act)-1]>>rem != 0 {
		return nil, segErr("nonzero trailing actor bits")
	}
	return act, nil
}

// segData is a parsed (not yet inflated) data column: the per-row raw
// lengths, the block geometry, and the compressed streams. v1 columns
// parse as a single block covering every row, so both formats share one
// selective-decode and cache path.
type segData struct {
	count     int
	blockRows int
	nblocks   int
	rowOff    []uint64 // len count+1: prefix sums of per-row raw lengths
	compOff   []int    // per block: offset of its DEFLATE stream in streams
	compLen   []int
	streams   []byte
}

// parseData validates the data column's framing: row lengths vs the
// declared total, block geometry, and per-block compressed extents that
// exactly cover the remaining payload.
func (sb *segBlob) parseData() (*segData, error) {
	payload, err := sb.col(segColData)
	if err != nil {
		return nil, err
	}
	r := &segReader{b: payload}
	d := &segData{count: sb.count}
	if sb.version >= segVersion2 {
		br, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if br == 0 || br > segMaxCount {
			return nil, segErr("data block rows %d out of range", br)
		}
		nb, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		d.blockRows = int(br)
		d.nblocks = int(nb)
		if want := (sb.count + d.blockRows - 1) / d.blockRows; d.nblocks != want {
			return nil, segErr("data column claims %d blocks, geometry needs %d", d.nblocks, want)
		}
	} else {
		d.blockRows, d.nblocks = sb.count, 1
	}
	totalRaw, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if totalRaw > segMaxData {
		return nil, segErr("data column claims %d bytes", totalRaw)
	}
	d.rowOff = make([]uint64, sb.count+1)
	for i := 0; i < sb.count; i++ {
		l, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if l > segMaxPacket {
			return nil, segErr("row %d claims %d data bytes", i, l)
		}
		d.rowOff[i+1] = d.rowOff[i] + l
	}
	if d.rowOff[sb.count] != totalRaw {
		return nil, segErr("row lengths sum %d != total %d", d.rowOff[sb.count], totalRaw)
	}
	d.compOff = make([]int, d.nblocks)
	d.compLen = make([]int, d.nblocks)
	if sb.version >= segVersion2 {
		var sum uint64
		for b := 0; b < d.nblocks; b++ {
			cl, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			sum += cl
			d.compLen[b] = int(cl)
		}
		if sum != uint64(len(payload)-r.off) {
			return nil, segErr("block streams claim %d bytes, %d remain", sum, len(payload)-r.off)
		}
		off := 0
		for b := 0; b < d.nblocks; b++ {
			d.compOff[b] = off
			off += d.compLen[b]
		}
	} else {
		d.compLen[0] = len(payload) - r.off
	}
	d.streams = payload[r.off:]
	return d, nil
}

// blockRange returns block b's row interval [lo, hi).
func (d *segData) blockRange(b int) (int, int) {
	lo := b * d.blockRows
	hi := lo + d.blockRows
	if hi > d.count {
		hi = d.count
	}
	return lo, hi
}

// inflatePool recycles flate readers across block decodes: NewReader
// allocates a fresh 32 KiB history window per call, which dominates the
// cost of inflating small blocks. Readers are Reset before every use, so
// pooling one that saw a corrupt stream is safe.
var inflatePool = sync.Pool{
	New: func() any { return flate.NewReader(nil) },
}

// inflateBlock decompresses one block, validating the exact raw size and
// a clean end of stream.
func (d *segData) inflateBlock(b int) ([]byte, error) {
	lo, hi := d.blockRange(b)
	size := d.rowOff[hi] - d.rowOff[lo]
	fr := inflatePool.Get().(io.ReadCloser)
	defer inflatePool.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(d.streams[d.compOff[b]:d.compOff[b]+d.compLen[b]]), nil); err != nil {
		return nil, segErr("inflate reset block %d: %v", b, err)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(fr, buf); err != nil {
		return nil, segErr("inflate block %d: %v", b, err)
	}
	var one [1]byte
	if n, err := fr.Read(one[:]); n != 0 || err != io.EOF {
		return nil, segErr("trailing bytes in block %d deflate stream", b)
	}
	if err := fr.Close(); err != nil {
		return nil, segErr("inflate close block %d: %v", b, err)
	}
	return buf, nil
}

// rowBytes slices one row's raw bytes out of its inflated block.
func (d *segData) rowBytes(blockBuf []byte, b, row int) []byte {
	base := d.rowOff[b*d.blockRows]
	lo, hi := d.rowOff[row]-base, d.rowOff[row+1]-base
	return blockBuf[lo:hi:hi]
}

// readRowList decodes one delta-coded row list, validating strict ascent
// and the row-position domain.
func readRowList(r *segReader, count int) ([]uint32, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(count) {
		return nil, segErr("row list claims %d of %d rows", n, count)
	}
	if n == 0 {
		return nil, nil
	}
	rows := make([]uint32, n)
	v, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if v >= uint64(count) {
		return nil, segErr("row %d out of range", v)
	}
	rows[0] = uint32(v)
	for j := 1; j < int(n); j++ {
		d, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if d == 0 {
			return nil, segErr("row list not strictly ascending")
		}
		nv := uint64(rows[j-1]) + d
		if nv >= uint64(count) {
			return nil, segErr("row %d out of range", nv)
		}
		rows[j] = uint32(nv)
	}
	return rows, nil
}

// decodeIndex decodes and validates the index column: ascending in-domain
// values, strictly ascending row lists, and — for the five value families
// — an exact partition of the rows (which is what makes the link/label
// scatter total and the zone map's absence proofs sound).
func (sb *segBlob) decodeIndex() (*segIndex, error) {
	payload, err := sb.col(segColIndex)
	if err != nil {
		return nil, err
	}
	r := &segReader{b: payload}
	ix := newSegIndex()
	for fi := range ix.fams {
		nvals, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nvals > uint64(sb.count) {
			return nil, segErr("family %d claims %d values", fi, nvals)
		}
		seen := make([]bool, sb.count)
		total := 0
		prev := uint64(0)
		for vi := uint64(0); vi < nvals; vi++ {
			val, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if vi > 0 && val <= prev {
				return nil, segErr("family %d values not ascending", fi)
			}
			prev = val
			if val > segFamilyMax[fi] {
				return nil, segErr("family %d value %d out of domain", fi, val)
			}
			rows, err := readRowList(r, sb.count)
			if err != nil {
				return nil, err
			}
			if len(rows) == 0 {
				return nil, segErr("family %d value %d has no rows", fi, val)
			}
			for _, row := range rows {
				if seen[row] {
					return nil, segErr("family %d row %d indexed twice", fi, row)
				}
				seen[row] = true
			}
			total += len(rows)
			ix.fams[fi][val] = rows
		}
		if total != sb.count {
			return nil, segErr("family %d covers %d of %d rows", fi, total, sb.count)
		}
	}
	for fl := range ix.flags {
		rows, err := readRowList(r, sb.count)
		if err != nil {
			return nil, err
		}
		ix.flags[fl] = rows
	}
	if !r.done() {
		return nil, segErr("trailing bytes in index column")
	}
	return ix, nil
}

// rowsAt materializes the selected rows (ascending row positions) into
// StoredPackets, re-parsing summaries from the raw bytes. sel == nil
// materializes every row. Only the data blocks the selection lands in are
// inflated; bs (optional) serves and fills the decoded-block cache. v2
// blobs read link/label per row from the dictionary column; v1 blobs
// invert the index column into scatter arrays. Materialized rows never
// alias the blob's backing bytes, so the caller may unmap them once
// rowsAt returns.
func (sb *segBlob) rowsAt(sel []uint32, ix *segIndex, ids []PacketID, tss []time.Duration, bs *blockSource) ([]StoredPacket, error) {
	act, err := sb.decodeActor()
	if err != nil {
		return nil, err
	}
	d, err := sb.parseData()
	if err != nil {
		return nil, err
	}
	var dict *segDict
	var links, labels []uint64
	if sb.version >= segVersion2 {
		if dict, err = sb.decodeDict(); err != nil {
			return nil, err
		}
	} else {
		links = ix.scatter(3, sb.count)
		labels = ix.scatter(4, sb.count)
	}
	n := sb.count
	if sel != nil {
		n = len(sel)
	}
	out := make([]StoredPacket, n)
	p := parserPool.Get().(*packet.FlowParser)
	defer parserPool.Put(p)
	curBlock := -1
	var blockBuf []byte
	for i := 0; i < n; i++ {
		row := i
		if sel != nil {
			row = int(sel[i])
		}
		if b := row / d.blockRows; b != curBlock {
			if blockBuf, err = bs.block(d, b); err != nil {
				return nil, err
			}
			curBlock = b
		}
		sp := &out[i]
		sp.ID, sp.TS = ids[row], tss[row]
		if dict != nil {
			sp.Link = uint16(dict.at(0, row))
			sp.Label = traffic.Label(dict.at(1, row))
		} else {
			sp.Link = uint16(links[row])
			sp.Label = traffic.Label(labels[row])
		}
		sp.Actor = act[row/8]&(1<<(row%8)) != 0
		sp.Data = d.rowBytes(blockBuf, curBlock, row)
		_ = p.Parse(sp.Data, &sp.Summary)
	}
	return out, nil
}

// decodeBlobRows fully decodes a parsed blob back into its row run.
func (sb *segBlob) decodeBlobRows(bs *blockSource) ([]StoredPacket, error) {
	ids, tss, err := sb.decodeTimeID()
	if err != nil {
		return nil, err
	}
	ix, err := sb.decodeIndex()
	if err != nil {
		return nil, err
	}
	return sb.rowsAt(nil, ix, ids, tss, bs)
}

// decodeSegmentRows fully decodes a segment blob back into its row run —
// the scan-reference and compaction path, and the fuzz target's identity
// check: decode(encode(rows)) == rows for every valid blob, v1 or v2.
func decodeSegmentRows(b []byte) ([]StoredPacket, error) {
	sb, err := parseSegment(b)
	if err != nil {
		return nil, err
	}
	return sb.decodeBlobRows(nil)
}

// openSegMeta parses a segment blob just enough to register it: header
// bounds plus the zone map derived from the index column. Every column
// CRC is verified here — attach is the one moment strictness is cheap —
// but the ID/TS/data columns stay undecoded.
func openSegMeta(b []byte) (segMeta, error) {
	var m segMeta
	sb, err := parseSegment(b)
	if err != nil {
		return m, err
	}
	if err := sb.verifyAll(); err != nil {
		return m, err
	}
	ix, err := sb.decodeIndex()
	if err != nil {
		return m, err
	}
	m.count = sb.count
	m.minID, m.maxID = sb.minID, sb.maxID
	m.minTS, m.maxTS = sb.minTS, sb.maxTS
	m.zone = ix.zone()
	return m, nil
}
