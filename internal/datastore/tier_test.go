package datastore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"campuslab/internal/traffic"
)

// aggressiveTier returns a policy that seals early and often, so even the
// small test scenarios exercise multiple seal generations and segments.
func aggressiveTier(dir string) TierPolicy {
	return TierPolicy{
		Dir:            dir,
		HotPackets:     512,
		KeepFrac:       0.5,
		MinSealPackets: 64,
		SegmentPackets: 256,
	}
}

// tierFrames is equivFrames cut to a size that keeps the tier matrix
// (shards × workers × policy, with per-query cold decompression) fast
// enough for the -race gate while still spanning many segments.
func tierFrames(t *testing.T) []traffic.Frame {
	t.Helper()
	frames := equivFrames(t)
	if len(frames) > 6000 {
		frames = frames[:6000]
	}
	return frames
}

// ingestTiered builds a store with the given shard count and tier policy,
// feeding the frames through AddBatch in uneven chunks so the automatic
// seal trigger fires mid-stream.
func ingestTiered(t *testing.T, shards, workers int, pol TierPolicy) *Store {
	t.Helper()
	frames := tierFrames(t)
	s := NewSharded(shards)
	if pol.Dir != "" {
		if err := s.EnableTiering(pol); err != nil {
			t.Fatal(err)
		}
	}
	for lo := 0; lo < len(frames); {
		hi := lo + 400 + lo%333
		if hi > len(frames) {
			hi = len(frames)
		}
		if _, err := s.AddBatch(frames[lo:hi], workers); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	return s
}

// tierPrint captures every query surface that must be invariant under
// tiering. Unlike storePrint it excludes Save bytes (tiered snapshots are
// v3 by design) and hot-only Stats.
type tierPrint struct {
	scan     []StoredPacket
	flows    []FlowMeta
	flowPkts [][]PacketID
	labels   map[int]int
	total    uint64
}

func tierFingerprint(t *testing.T, s *Store) tierPrint {
	t.Helper()
	var p tierPrint
	s.Scan(func(sp *StoredPacket) bool {
		p.scan = append(p.scan, *sp)
		return true
	})
	p.flows = s.Flows()
	for i := range p.flows {
		p.flowPkts = append(p.flowPkts, p.flows[i].PacketIDs())
	}
	p.labels = make(map[int]int)
	for k, v := range s.LabelCounts() {
		p.labels[int(k)] = v
	}
	st := s.Stats()
	p.total = st.Packets + st.ColdPackets
	return p
}

func compareTierPrints(t *testing.T, name string, want, got tierPrint) {
	t.Helper()
	if !reflect.DeepEqual(want.scan, got.scan) {
		n := len(want.scan)
		if len(got.scan) < n {
			n = len(got.scan)
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(want.scan[i], got.scan[i]) {
				t.Fatalf("%s: Scan diverges at row %d:\nwant %+v\ngot  %+v", name, i, want.scan[i], got.scan[i])
			}
		}
		t.Fatalf("%s: Scan length differs: want %d got %d", name, len(want.scan), len(got.scan))
	}
	if !reflect.DeepEqual(want.flows, got.flows) {
		t.Errorf("%s: Flows differ (want %d, got %d)", name, len(want.flows), len(got.flows))
	}
	if !reflect.DeepEqual(want.flowPkts, got.flowPkts) {
		t.Errorf("%s: per-flow PacketIDs differ", name)
	}
	if !reflect.DeepEqual(want.labels, got.labels) {
		t.Errorf("%s: LabelCounts differ: want %v got %v", name, want.labels, got.labels)
	}
	if want.total != got.total {
		t.Errorf("%s: total packets differ: want %d got %d", name, want.total, got.total)
	}
}

// TestTieredStoreEquivalence is the tentpole property: with tiering off
// versus an aggressive seal-everything policy, every query surface must be
// byte-identical across shard and worker counts — including the planner
// path, the serial scan reference, and randomized filter expressions —
// and stay identical after compaction.
func TestTieredStoreEquivalence(t *testing.T) {
	ref := ingestTiered(t, 4, 4, TierPolicy{})
	want := tierFingerprint(t, ref)
	if want.total == 0 || len(want.flows) == 0 {
		t.Fatal("reference store is empty")
	}
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("shards=%d workers=%d", shards, workers)
			s := ingestTiered(t, shards, workers, aggressiveTier(t.TempDir()))
			s.SetQueryWorkers(workers)
			ts := s.TierStats()
			if ts.Segments == 0 || ts.ColdPackets == 0 {
				t.Fatalf("%s: no automatic seal happened (stats %+v)", name, ts)
			}
			compareTierPrints(t, name, want, tierFingerprint(t, s))

			// Randomized filters: tiered planner results must match both the
			// untiered store and the tiered store's own scan reference.
			r := rand.New(rand.NewSource(int64(100*shards + workers)))
			nq := 40
			if testing.Short() {
				nq = 10
			}
			for i := 0; i < nq; i++ {
				expr := genQueryExpr(r, 3)
				f, err := ParseFilter(expr)
				if err != nil {
					t.Fatalf("generated expression rejected: %q: %v", expr, err)
				}
				limit := 0
				if r.Intn(3) == 0 {
					limit = 1 + r.Intn(20)
				}
				wantSel := ref.Select(f, limit)
				wantN := ref.Count(f)
				got := s.Select(f, limit)
				gotN := s.Count(f)
				if !reflect.DeepEqual(wantSel, got) {
					t.Fatalf("%s: Select(%q, %d) diverged from untiered: %d vs %d rows",
						name, expr, limit, len(wantSel), len(got))
				}
				if wantN != gotN {
					t.Fatalf("%s: Count(%q) diverged from untiered: %d vs %d", name, expr, wantN, gotN)
				}
				s.SetScanQuery(true)
				scanSel := s.Select(f, limit)
				scanN := s.Count(f)
				s.SetScanQuery(false)
				if !reflect.DeepEqual(wantSel, scanSel) || wantN != scanN {
					t.Fatalf("%s: tiered scan reference diverged on %q", name, expr)
				}
			}

			// Time-window surface across the seal boundary.
			span := want.scan[len(want.scan)-1].TS
			for _, w := range [][2]time.Duration{{0, span / 3}, {span / 3, 2 * span / 3}, {span / 2, -1}} {
				a := ref.PacketsBetween(w[0], w[1])
				b := s.PacketsBetween(w[0], w[1])
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s: PacketsBetween(%v,%v) differs: %d vs %d rows", name, w[0], w[1], len(a), len(b))
				}
			}

			// Point lookups must resolve cold IDs.
			for id := PacketID(0); id < PacketID(want.total); id += PacketID(want.total / 50) {
				wp, wok := ref.Packet(id)
				gp, gok := s.Packet(id)
				if wok != gok || !reflect.DeepEqual(wp, gp) {
					t.Fatalf("%s: Packet(%d) differs (ok %v vs %v)", name, id, wok, gok)
				}
			}

			// Compaction must not change any observable result.
			if _, err := s.CompactTier(); err != nil {
				t.Fatalf("%s: CompactTier: %v", name, err)
			}
			compareTierPrints(t, name+" post-compact", want, tierFingerprint(t, s))
		}
	}
}

// TestTierSealStats: manual sealing moves packets cold, Stats separates
// the tiers, and TotalBytes/Span keep covering both.
func TestTierSealStats(t *testing.T) {
	s := ingestTiered(t, 4, 1, TierPolicy{})
	pre := s.Stats()
	dir := t.TempDir()
	if err := s.EnableTiering(TierPolicy{Dir: dir, SegmentPackets: 256}); err != nil {
		t.Fatal(err)
	}
	moved, err := s.SealHot(100)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("SealHot moved nothing")
	}
	st := s.Stats()
	if st.Packets+st.ColdPackets != pre.Packets {
		t.Fatalf("tier split lost packets: hot %d + cold %d != %d", st.Packets, st.ColdPackets, pre.Packets)
	}
	if st.ColdPackets != uint64(moved) || st.Segments == 0 || st.ColdBytes == 0 {
		t.Fatalf("cold stats inconsistent: %+v (moved %d)", st, moved)
	}
	if st.DataBytes >= pre.DataBytes {
		t.Fatal("hot data bytes did not shrink after seal")
	}
	if st.TotalBytes() != st.DataBytes+st.IndexBytes+st.ColdBytes {
		t.Fatal("TotalBytes must include the cold tier")
	}
	if st.Span != pre.Span || st.Flows != pre.Flows {
		t.Fatalf("span/flows changed across seal: %+v vs %+v", st, pre)
	}
	ts := s.TierStats()
	if !ts.Enabled || ts.Seals != 1 || ts.SealedPackets != uint64(moved) || ts.SealedBelow == 0 {
		t.Fatalf("TierStats inconsistent: %+v", ts)
	}
	// Cold files really are compressed columns: on-disk cold bytes must be
	// well under the raw packet bytes they replaced.
	rawCold := pre.DataBytes - st.DataBytes
	if st.ColdBytes >= rawCold {
		t.Fatalf("cold segments (%d B) not smaller than raw packets (%d B)", st.ColdBytes, rawCold)
	}
}

// TestEvictBeforeSealAware: on a tiered store, EvictBefore demotes instead
// of destroying — the evicted window stays fully queryable from cold
// segments, while the hot tier shrinks.
func TestEvictBeforeSealAware(t *testing.T) {
	s := ingestTiered(t, 4, 1, TierPolicy{})
	want := tierFingerprint(t, s)
	if err := s.EnableTiering(TierPolicy{Dir: t.TempDir(), SegmentPackets: 512}); err != nil {
		t.Fatal(err)
	}
	cut := want.scan[len(want.scan)/2].TS
	evicted := s.EvictBefore(cut)
	if evicted == 0 {
		t.Fatal("EvictBefore sealed nothing")
	}
	st := s.Stats()
	if st.ColdPackets == 0 {
		t.Fatal("seal-aware eviction left the cold tier empty")
	}
	compareTierPrints(t, "evict-before", want, tierFingerprint(t, s))
}

// TestRetainColdDropsHistory: retention deletes whole cold segments (and
// the flows that ended inside them) once they age out.
func TestRetainColdDropsHistory(t *testing.T) {
	s := ingestTiered(t, 4, 1, aggressiveTier(t.TempDir()))
	if _, err := s.SealHot(0); err != nil { // everything cold
		t.Fatal(err)
	}
	pre := s.TierStats()
	if pre.Segments < 2 {
		t.Fatalf("need several segments, got %d", pre.Segments)
	}
	horizon := time.Duration(s.lastTS.Load()) / 2
	dropped, err := s.RetainCold(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("retention dropped nothing")
	}
	post := s.TierStats()
	if post.Segments != pre.Segments-dropped || post.ColdPackets >= pre.ColdPackets {
		t.Fatalf("retention accounting off: pre %+v post %+v dropped %d", pre, post, dropped)
	}
	for _, fm := range s.Flows() {
		if fm.Last < horizon {
			t.Fatalf("flow %v ended before the horizon but survived retention", fm.Key)
		}
	}
	// Remaining data still queryable.
	all, err := ParseFilter("ts >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Count(all); uint64(n) != s.Stats().Packets+post.ColdPackets {
		t.Fatalf("Count after retention: %d", n)
	}
	// Files really left the disk.
	ents, err := os.ReadDir(filepath.Dir(filepath.Join(s.tier.Load().dir, tierManifestName)))
	if err != nil {
		t.Fatal(err)
	}
	segFiles := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == segSuffix {
			segFiles++
		}
	}
	if segFiles != post.Segments {
		t.Fatalf("%d segment files on disk, registry has %d", segFiles, post.Segments)
	}
}

// TestCompactTierMergesSmallSegments: repeated small seals leave confetti;
// compaction merges them toward the size target without changing results.
func TestCompactTierMergesSmallSegments(t *testing.T) {
	s := ingestTiered(t, 4, 1, TierPolicy{})
	want := tierFingerprint(t, s)
	if err := s.EnableTiering(TierPolicy{Dir: t.TempDir(), SegmentPackets: 1024, MinSealPackets: 1}); err != nil {
		t.Fatal(err)
	}
	// Seal in thin slices: each SealHot call moves ~total/8 packets.
	total := want.total
	for keep := total * 7 / 8; ; keep -= total / 8 {
		if _, err := s.SealHot(keep); err != nil {
			t.Fatal(err)
		}
		if keep == 0 {
			break
		}
		if keep < total/8 {
			keep = total / 8
		}
	}
	pre := s.TierStats()
	if pre.Segments < 3 {
		t.Fatalf("expected confetti segments, got %d", pre.Segments)
	}
	replaced, err := s.CompactTier()
	if err != nil {
		t.Fatal(err)
	}
	post := s.TierStats()
	if replaced == 0 || post.Segments >= pre.Segments || post.Compactions == 0 {
		t.Fatalf("compaction did not merge: pre %d segs, post %d, replaced %d", pre.Segments, post.Segments, replaced)
	}
	if post.ColdPackets != pre.ColdPackets {
		t.Fatalf("compaction changed cold packet count: %d -> %d", pre.ColdPackets, post.ColdPackets)
	}
	compareTierPrints(t, "post-compact", want, tierFingerprint(t, s))
}

// TestTieredDurableRecovery: a durable store with tiering survives a clean
// close/recover cycle — v3 snapshot, WAL replay, segment re-attach — with
// every surface identical, including after a reshard.
func TestTieredDurableRecovery(t *testing.T) {
	frames := tierFrames(t)
	dir := t.TempDir()
	cfg := DurableConfig{
		Dir: dir, Fsync: FsyncAlways, Shards: 4,
		Tier: aggressiveTier(filepath.Join(dir, "tier")),
	}
	st, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(frames) / 2
	for lo := 0; lo < mid; lo += 500 {
		hi := lo + 500
		if hi > mid {
			hi = mid
		}
		if _, err := st.AddBatch(frames[lo:hi], 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CheckpointDir(dir); err != nil { // v3 snapshot under a live tier
		t.Fatal(err)
	}
	for lo := mid; lo < len(frames); lo += 500 {
		hi := lo + 500
		if hi > len(frames) {
			hi = len(frames)
		}
		if _, err := st.AddBatch(frames[lo:hi], 2); err != nil {
			t.Fatal(err)
		}
	}
	if st.TierStats().Segments == 0 {
		t.Fatal("no segments before crash point")
	}
	want := tierFingerprint(t, st)
	if err := st.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	rec, rs, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.CloseWAL()
	if rs.SnapshotPackets == 0 || rs.WALPackets == 0 {
		t.Fatalf("recovery should combine snapshot and WAL: %+v", rs)
	}
	compareTierPrints(t, "recovered", want, tierFingerprint(t, rec))

	// Recover once more at a different shard count: reshard must preserve
	// the IDs cold segments reference.
	rec2, _, err := Recover(DurableConfig{
		Dir: dir, Fsync: FsyncAlways, Shards: 8,
		Tier: cfg.Tier,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.CloseWAL()
	compareTierPrints(t, "recovered-resharded", want, tierFingerprint(t, rec2))
}

// TestTierCorruptSegmentDegradesLoudly: bit rot in a segment file must
// surface on TierStats.Err and the corrupt counter — queries degrade to
// the surviving data instead of failing or panicking.
func TestTierCorruptSegmentDegradesLoudly(t *testing.T) {
	dir := t.TempDir()
	s := ingestTiered(t, 4, 1, TierPolicy{})
	if err := s.EnableTiering(TierPolicy{Dir: dir, SegmentPackets: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SealHot(100); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*"+segSuffix))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files: %v", err)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	all, err := ParseFilter("ts >= 0")
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Count(all)
	ts := s.TierStats()
	if ts.Err == nil || ts.CorruptSegments == 0 {
		t.Fatalf("corruption not surfaced: %+v", ts)
	}
	if !errors.Is(ts.Err, ErrSegmentCorrupt) {
		t.Fatalf("sticky error should wrap ErrSegmentCorrupt, got %v", ts.Err)
	}
}
