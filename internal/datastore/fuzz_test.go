package datastore

import (
	"sync"
	"testing"
	"time"

	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// filterFuzzSeeds mixes every grammar production with near-misses and
// degenerate inputs so the fuzzer starts at the interesting boundaries.
func filterFuzzSeeds() []string {
	return []string{
		"proto == udp && dst.port == 53",
		"src.ip in 10.0.0.0/8 && len > 1000",
		"dns && dns.qtype == ANY && dns.resp",
		"ts >= 5s && ts < 10s && tcp.syn && !tcp.ack",
		"label == dns-amp",
		"label != benign",
		"link == 2",
		"(proto == tcp || proto == udp) && payload.len >= 1",
		"!(dns) && ttl <= 64",
		"dns.answers > 0",
		"src.port == 70000",
		"proto == 255",
		"ts == 3s",
		"dst.ip == 10.0.0.1",
		"proto ==",
		"&& dns",
		"ts >= 5x",
		"label == bogus",
		"src.ip in 10.0.0.0/33",
		"((((dns))))",
		"",
		"!",
		"ts<1s&&ts>0s",
	}
}

// fuzzEvalPackets is a small packet population for exercising compiled
// predicates: real generator traffic (DNS/TCP/UDP mix), a non-IP frame,
// and the zero packet. Built once — the fuzz body must stay fast.
var fuzzEvalPackets = sync.OnceValue(func() []*StoredPacket {
	plan := traffic.DefaultPlan(10)
	g := traffic.NewMerge(
		traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 30, Duration: time.Second, Seed: 7}),
		traffic.NewAttack(traffic.AttackConfig{
			Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(2),
			Duration: time.Second, Rate: 40, Seed: 8,
		}),
	)
	p := packet.NewFlowParser()
	var out []*StoredPacket
	var f traffic.Frame
	for i := 0; g.Next(&f) && len(out) < 64; i++ {
		sp := &StoredPacket{ID: PacketID(i), TS: f.TS, Link: uint16(i % 3), Label: f.Label, Actor: f.Actor}
		_ = p.Parse(f.Data, &sp.Summary)
		sp.Data = append([]byte(nil), f.Data...)
		out = append(out, sp)
	}
	out = append(out, &StoredPacket{}, &StoredPacket{Summary: packet.Summary{WireLen: 9000}})
	return out
})

// FuzzParseFilter drives the filter parser/compiler with arbitrary
// expression text. Invariants: parsing never panics; a parse either
// errors or yields a filter whose Match never panics on any packet;
// parsing is deterministic (same accept/reject, same matches, same time
// bounds and plan shape on every parse of the same text).
func FuzzParseFilter(f *testing.F) {
	for _, seed := range filterFuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		f1, err1 := ParseFilter(expr)
		f2, err2 := ParseFilter(expr)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("parse not deterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if f1.Expr() != expr {
			t.Fatalf("Expr() = %q, want %q", f1.Expr(), expr)
		}
		min1, max1, hasMin1, hasMax1 := f1.TimeBounds()
		min2, max2, hasMin2, hasMax2 := f2.TimeBounds()
		if min1 != min2 || max1 != max2 || hasMin1 != hasMin2 || hasMax1 != hasMax2 {
			t.Fatalf("time bounds not deterministic for %q", expr)
		}
		if f1.Indexable() != f2.Indexable() || len(f1.plan.keys) != len(f2.plan.keys) {
			t.Fatalf("plan not deterministic for %q", expr)
		}
		for _, sp := range fuzzEvalPackets() {
			if f1.Match(sp) != f2.Match(sp) {
				t.Fatalf("match not deterministic for %q on packet %d", expr, sp.ID)
			}
		}
	})
}
