package datastore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"campuslab/internal/obs"
	"campuslab/internal/parallel"
)

// The cold tier: week-scale retention at bounded RSS. When a TierPolicy
// is enabled, the store seals its oldest packets — always a prefix of the
// global ID sequence — into immutable CLSG segments on disk (segment.go)
// and trims them from the hot shard slabs. Queries span both tiers
// transparently: cold segments decode into extra (TS, ID)-sorted runs
// that join the same k-way merge as the hot shards, so results are
// byte-identical to an untiered store at any policy.
//
// State machine and crash safety. All cold-tier mutation (seal, compact,
// retain) serializes on sealMu and follows one write protocol:
//
//	1. write new segment files (temp + fsync + rename + dir sync)
//	2. write the manifest naming the new segment set and the seal
//	   watermark (same atomic protocol)
//	3. swap the in-RAM registry — and, for seal, trim the hot slabs —
//	   under tier.mu plus every shard lock
//	4. unlink replaced files (best effort; orphans are swept at attach)
//
// The manifest rename is the commit point. Killed before it, new files
// are unreferenced orphans and the packets are still covered by the hot
// tier's snapshot/WAL; killed after it, recovery rebuilds the hot store,
// then EnableTiering trims everything below the manifest's watermark —
// exactly the rows the segments hold. Acked ⇒ (slab ∨ WAL ∨ segment)
// holds through kill -9 at any instruction, with no duplicates, because
// the watermark trim is idempotent.
//
// Lock order: tier.mu strictly before shard locks, everywhere. Readers
// take tier.mu.RLock, decode the cold runs they need, then take the shard
// read locks; the seal swap takes tier.mu.Lock then every shard write
// lock. sealMu is above both and never held by readers.

// TierPolicy configures the cold tier. The zero value disables tiering.
type TierPolicy struct {
	// Dir is the segment directory (required; empty disables tiering).
	Dir string
	// HotPackets caps the hot tier's packet count; crossing it triggers a
	// seal that trims the hot tier down to KeepFrac of the cap.
	// 0 = no packet trigger.
	HotPackets uint64
	// HotBytes caps the hot tier's raw packet bytes (0 = no byte trigger).
	HotBytes uint64
	// KeepFrac is the fraction of the cap the hot tier is trimmed to when
	// a seal triggers (default 0.5) — sealing in halves amortizes the
	// per-seal cost instead of sealing a sliver per batch.
	KeepFrac float64
	// MinSealPackets is the smallest prefix worth sealing (default 256);
	// below it the trigger is ignored to avoid confetti segments.
	MinSealPackets uint64
	// SegmentPackets is the target rows per segment file (default 32768).
	SegmentPackets int
	// Retain bounds cold history: segments whose newest packet is older
	// than lastTS-Retain are deleted by the compactor (0 = keep forever).
	Retain time.Duration
	// Format selects the segment writer version: 0 (default) and 2 write
	// the v2 block-compressed + dictionary format; 1 writes the legacy
	// single-stream format. Readers accept both regardless.
	Format int
	// CacheBytes bounds the decoded-block LRU cache serving cold queries
	// (0 = disabled: every query inflates what it needs and discards it).
	CacheBytes int64
}

func (p *TierPolicy) applyDefaults() {
	if p.KeepFrac <= 0 || p.KeepFrac >= 1 {
		p.KeepFrac = 0.5
	}
	if p.MinSealPackets == 0 {
		p.MinSealPackets = 256
	}
	if p.SegmentPackets <= 0 {
		p.SegmentPackets = 32768
	}
	if p.Format == 0 {
		p.Format = segVersion2
	}
}

// TierStats reports the cold tier for Stats consumers, labd gauges and
// E17: resident registry state plus lifetime counters (per store, so
// experiments can diff them without scraping the process registry).
type TierStats struct {
	Enabled         bool
	Segments        int
	ColdPackets     uint64
	ColdBytes       uint64 // segment file bytes on disk
	SealedBelow     PacketID
	Seals           uint64
	SealedPackets   uint64
	Compactions     uint64
	SegmentsScanned uint64 // cold segments decoded for queries
	SegmentsPruned  uint64 // cold segments skipped by TS bounds or zone map
	CorruptSegments uint64
	CacheHits       uint64 // decoded-block cache hits (0 when cache off)
	CacheMisses     uint64
	CacheBytes      int64 // decoded blocks resident in the cache
	CacheEntries    int
	Err             error // sticky: last segment decode/IO failure
}

// Tier-lifecycle metrics for /metrics.
var (
	obsTierSeals        = obs.Default.Counter("campuslab_tier_seals_total")
	obsTierSealedPkts   = obs.Default.Counter("campuslab_tier_sealed_packets_total")
	obsTierCompactions  = obs.Default.Counter("campuslab_tier_compactions_total")
	obsTierRetained     = obs.Default.Counter("campuslab_tier_retained_segments_total")
	obsTierScanned      = obs.Default.Counter("campuslab_tier_segments_scanned_total")
	obsTierPruned       = obs.Default.Counter("campuslab_tier_segments_pruned_total")
	obsTierCorrupt      = obs.Default.Counter("campuslab_tier_corrupt_segments_total")
	obsTierSegments     = obs.Default.Gauge("campuslab_tier_segments")
	obsTierColdPackets  = obs.Default.Gauge("campuslab_tier_cold_packets")
	obsTierColdBytes    = obs.Default.Gauge("campuslab_tier_cold_bytes")
)

// tierTestHook, when set, is called at the named stages of the seal and
// compact protocols so crash tests can kill -9 the process between the
// file writes, the manifest commit, and the in-RAM swap.
var tierTestHook func(stage string)

func tierHook(stage string) {
	if tierTestHook != nil {
		tierTestHook(stage)
	}
}

// segSeqInvalid marks a segment whose file name did not parse to a seq;
// such segments are never block-cached (the seq is the cache key).
const segSeqInvalid = ^uint64(0)

// tierSegment is one registered cold segment: its file name, the seq the
// name encodes (the cache key space), resident metadata and on-disk size.
type tierSegment struct {
	name      string
	seq       uint64
	meta      segMeta
	fileBytes uint64
}

// tier is the cold-tier registry attached to a store.
type tier struct {
	dir    string
	policy TierPolicy
	// cache is the decoded-block LRU (nil when CacheBytes == 0).
	cache *tierCache

	// sealMu serializes every cold-tier mutation (seal/compact/retain).
	sealMu sync.Mutex
	// nextSeq numbers segment files monotonically; guarded by sealMu.
	nextSeq uint64

	// mu guards the registry below. Ordered strictly before shard locks.
	mu          sync.RWMutex
	segs        []*tierSegment // ascending minID (seal order)
	coldPackets uint64
	coldBytes   uint64
	// tsSorted records whether segs' TS bounds (minTS and maxTS both)
	// are non-decreasing in registry order — the common case, enabling
	// binary-searched window lookups. Recomputed on every registry swap;
	// false falls back to the linear scan (concurrent serial ingest can
	// interleave TS across seal generations in edge cases).
	tsSorted bool

	// sealedBelow mirrors the manifest watermark: every ID below it is
	// cold. Atomic so the per-batch seal trigger reads it lock-free.
	sealedBelow atomic.Uint64

	seals         atomic.Uint64
	sealedPackets atomic.Uint64
	compactions   atomic.Uint64
	scanned       atomic.Uint64
	pruned        atomic.Uint64
	corrupt       atomic.Uint64

	errMu   sync.Mutex
	lastErr error
}

// noteErr records a segment failure: sticky for healthz, counted for
// /metrics. The failing segment is treated as empty for the query that
// hit it — queries degrade loudly (healthz goes degraded) rather than
// failing outright.
func (tr *tier) noteErr(err error) {
	tr.corrupt.Add(1)
	obsTierCorrupt.Inc()
	tr.errMu.Lock()
	tr.lastErr = err
	tr.errMu.Unlock()
}

func (tr *tier) publishLocked() {
	obsTierSegments.Set(float64(len(tr.segs)))
	obsTierColdPackets.Set(float64(tr.coldPackets))
	obsTierColdBytes.Set(float64(tr.coldBytes))
}

// TierStats reports the cold tier (zero value when tiering is off).
func (s *Store) TierStats() TierStats {
	tr := s.tier.Load()
	if tr == nil {
		return TierStats{}
	}
	tr.mu.RLock()
	st := TierStats{
		Enabled:     true,
		Segments:    len(tr.segs),
		ColdPackets: tr.coldPackets,
		ColdBytes:   tr.coldBytes,
	}
	tr.mu.RUnlock()
	st.SealedBelow = PacketID(tr.sealedBelow.Load())
	st.Seals = tr.seals.Load()
	st.SealedPackets = tr.sealedPackets.Load()
	st.Compactions = tr.compactions.Load()
	st.SegmentsScanned = tr.scanned.Load()
	st.SegmentsPruned = tr.pruned.Load()
	st.CorruptSegments = tr.corrupt.Load()
	if tr.cache != nil {
		st.CacheHits = tr.cache.hits.Load()
		st.CacheMisses = tr.cache.misses.Load()
		st.CacheBytes, st.CacheEntries = tr.cache.size()
	}
	tr.errMu.Lock()
	st.Err = tr.lastErr
	tr.errMu.Unlock()
	return st
}

const (
	tierManifestName = "tier.manifest"
	tierManifestMag  = "CLTM"
	tierManifestVer  = 1
	segSuffix        = ".clsg"
)

func tierSegName(seq uint64) string { return fmt.Sprintf("seg-%016x%s", seq, segSuffix) }

// writeFileAtomic writes name under dir via temp + fsync + rename and
// syncs the directory, so the file is either absent or complete.
func writeFileAtomic(dir, name string, data []byte) error {
	f, err := os.CreateTemp(dir, name+".tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}


// writeManifestLocked commits a new segment set + watermark. Caller holds
// sealMu (segs may be the live slice — it is only mutated under sealMu).
func (tr *tier) writeManifestLocked(sealedBelow PacketID, segs []*tierSegment) error {
	b := []byte(tierManifestMag)
	b = le16(b, tierManifestVer)
	b = le16(b, 0)
	b = le64(b, uint64(sealedBelow))
	b = le64(b, tr.nextSeq)
	b = le32(b, uint32(len(segs)))
	for _, sg := range segs {
		b = le16(b, uint16(len(sg.name)))
		b = append(b, sg.name...)
	}
	b = le32(b, crc32.ChecksumIEEE(b))
	return writeFileAtomic(tr.dir, tierManifestName, b)
}

// loadManifest reads the tier manifest; ok=false means a fresh tier (no
// manifest yet). A present-but-invalid manifest is an error — refusing to
// open beats silently dropping cold history.
func loadManifest(dir string) (sealedBelow PacketID, nextSeq uint64, names []string, ok bool, err error) {
	b, rerr := os.ReadFile(filepath.Join(dir, tierManifestName))
	if rerr != nil {
		if errors.Is(rerr, os.ErrNotExist) {
			return 0, 0, nil, false, nil
		}
		return 0, 0, nil, false, rerr
	}
	bad := func(f string, a ...any) error {
		return fmt.Errorf("datastore: tier manifest: %s", fmt.Sprintf(f, a...))
	}
	if len(b) < 4+2+2+8+8+4+4 || string(b[:4]) != tierManifestMag {
		return 0, 0, nil, false, bad("bad magic or truncated")
	}
	body, sum := b[:len(b)-4], rd32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, 0, nil, false, bad("checksum mismatch")
	}
	if v := rd16(b[4:]); v != tierManifestVer {
		return 0, 0, nil, false, bad("unsupported version %d", v)
	}
	sealedBelow = PacketID(rd64(b[8:]))
	nextSeq = rd64(b[16:])
	n := int(rd32(b[24:]))
	off := 28
	for i := 0; i < n; i++ {
		if off+2 > len(body) {
			return 0, 0, nil, false, bad("truncated name table")
		}
		l := int(rd16(b[off:]))
		off += 2
		if off+l > len(body) {
			return 0, 0, nil, false, bad("truncated name")
		}
		names = append(names, string(b[off:off+l]))
		off += l
	}
	if off != len(body) {
		return 0, 0, nil, false, bad("trailing bytes")
	}
	return sealedBelow, nextSeq, names, true, nil
}

// EnableTiering attaches a cold tier. On a directory with an existing
// manifest it reloads the segment registry, sweeps crash orphans, trims
// any hot rows below the seal watermark (recovery re-ingests them from
// the snapshot/WAL; the trim is the idempotent dedup step), and advances
// the ID/TS sequences past the cold maxima so new packets never collide
// with sealed history.
func (s *Store) EnableTiering(pol TierPolicy) error {
	if pol.Dir == "" {
		return errors.New("datastore: tier policy needs a directory")
	}
	if s.tier.Load() != nil {
		return errors.New("datastore: tiering already enabled")
	}
	pol.applyDefaults()
	if pol.Format != segVersion1 && pol.Format != segVersion2 {
		return fmt.Errorf("datastore: unsupported tier segment format %d", pol.Format)
	}
	if err := os.MkdirAll(pol.Dir, 0o755); err != nil {
		return err
	}
	RemoveStaleTemps(pol.Dir, tierManifestName)
	RemoveStaleTemps(pol.Dir, "seg-*"+segSuffix)
	sealedBelow, nextSeq, names, ok, err := loadManifest(pol.Dir)
	if err != nil {
		return err
	}
	tr := &tier{dir: pol.Dir, policy: pol, nextSeq: nextSeq}
	if pol.CacheBytes > 0 {
		tr.cache = newTierCache(pol.CacheBytes)
	}
	inManifest := make(map[string]bool, len(names))
	if ok {
		var maxID PacketID
		var maxTS time.Duration
		for _, name := range names {
			inManifest[name] = true
			b, err := os.ReadFile(filepath.Join(pol.Dir, name))
			if err != nil {
				return fmt.Errorf("datastore: tier segment %s: %w", name, err)
			}
			meta, err := openSegMeta(b)
			if err != nil {
				return fmt.Errorf("datastore: tier segment %s: %w", name, err)
			}
			sg := &tierSegment{name: name, seq: segSeqInvalid, meta: meta, fileBytes: uint64(len(b))}
			if seq, perr := parseTierSegName(name); perr == nil {
				sg.seq = seq
				if seq >= tr.nextSeq {
					tr.nextSeq = seq + 1
				}
			}
			tr.segs = append(tr.segs, sg)
			tr.coldPackets += uint64(meta.count)
			tr.coldBytes += uint64(len(b))
			if meta.maxID > maxID {
				maxID = meta.maxID
			}
			if meta.maxTS > maxTS {
				maxTS = meta.maxTS
			}
		}
		sort.Slice(tr.segs, func(i, j int) bool { return tr.segs[i].meta.minID < tr.segs[j].meta.minID })
		tr.sealedBelow.Store(uint64(sealedBelow))
		// The sealed history owns IDs up to maxID and time up to maxTS;
		// the fresh sequences must start past both.
		if next := uint64(maxID) + 1; len(tr.segs) > 0 && s.nextID.Load() < next {
			s.nextID.Store(next)
		}
		if len(tr.segs) > 0 && s.lastTS.Load() < int64(maxTS) {
			s.lastTS.Store(int64(maxTS))
		}
	}
	// Sweep orphan segment files (written by a seal/compact that died
	// before its manifest commit, or replaced by one that died before
	// unlinking its inputs).
	if matches, _ := filepath.Glob(filepath.Join(pol.Dir, "seg-*"+segSuffix)); matches != nil {
		for _, m := range matches {
			if !inManifest[filepath.Base(m)] {
				os.Remove(m)
			}
		}
	}
	// Idempotent dedup: recovery may have re-ingested rows that are
	// already sealed; drop them from the hot tier (occupancy follows).
	if w := PacketID(tr.sealedBelow.Load()); w > 0 {
		var removed int
		var freed uint64
		for _, sh := range s.shards {
			sh.lock()
			n, b := sh.trimBelowID(w)
			removed += n
			freed += b
			sh.mu.Unlock()
		}
		if removed > 0 {
			s.totPackets.Add(^uint64(removed) + 1)
			s.totBytes.Add(^freed + 1)
		}
	}
	tr.mu.Lock()
	tr.recomputeTSSortedLocked()
	tr.publishLocked()
	tr.mu.Unlock()
	s.tier.Store(tr)
	return nil
}

// recomputeTSSortedLocked refreshes the binary-search eligibility flag
// after any registry swap. Caller holds tr.mu (write).
func (tr *tier) recomputeTSSortedLocked() {
	tr.tsSorted = true
	for i := 1; i < len(tr.segs); i++ {
		prev, cur := &tr.segs[i-1].meta, &tr.segs[i].meta
		if cur.minTS < prev.minTS || cur.maxTS < prev.maxTS {
			tr.tsSorted = false
			return
		}
	}
}

func parseTierSegName(name string) (uint64, error) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "seg-%016x"+segSuffix, &seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// trimBelowID drops the shard's slab prefix with ID < limit — the hot
// side of a seal. Unlike evictBefore, flow metadata survives intact:
// sealed packets are still queryable, so their flows' aggregates and
// packet-ID lists must keep describing them. Caller holds the shard
// write lock.
func (sh *shard) trimBelowID(limit PacketID) (int, uint64) {
	cut := sort.Search(len(sh.packets), func(i int) bool { return sh.packets[i].ID >= limit })
	if cut == 0 {
		return 0, 0
	}
	var freed uint64
	for i := range sh.packets[:cut] {
		freed += uint64(len(sh.packets[i].Data))
	}
	sh.dataBytes -= freed
	sh.packets = append([]StoredPacket(nil), sh.packets[cut:]...)
	sh.indexBytes -= 8 * uint64(sh.index.evictBelow(limit))
	return cut, freed
}

// maybeSeal is the per-batch seal trigger: two atomic loads when the hot
// tier is under its caps, a background-priority TryLock when it is not.
// Called outside ingestMu so sealing never blocks the WAL ack path.
func (s *Store) maybeSeal() {
	tr := s.tier.Load()
	if tr == nil {
		return
	}
	pol := &tr.policy
	hotPkts := s.totPackets.Load()
	hotBytes := s.totBytes.Load()
	var keep uint64
	switch {
	case pol.HotPackets > 0 && hotPkts > pol.HotPackets:
		keep = uint64(float64(pol.HotPackets) * pol.KeepFrac)
	case pol.HotBytes > 0 && hotBytes > pol.HotBytes:
		// Byte cap: translate to a packet count at the observed mean
		// packet size, so the trim lands near KeepFrac of the byte cap.
		keep = uint64(float64(hotPkts) * float64(pol.HotBytes) / float64(hotBytes) * pol.KeepFrac)
	default:
		return
	}
	if keep >= hotPkts {
		return
	}
	limit := PacketID(s.nextID.Load() - keep)
	if uint64(limit)-tr.sealedBelow.Load() < pol.MinSealPackets {
		return
	}
	s.sealTo(tr, limit, false)
}

// SealHot seals every hot packet except the newest keepRecent into cold
// segments, returning the number sealed. Manual counterpart of the
// automatic policy trigger (tests, shutdown flush, operators).
func (s *Store) SealHot(keepRecent uint64) (int, error) {
	tr := s.tier.Load()
	if tr == nil {
		return 0, nil
	}
	next := s.nextID.Load()
	if keepRecent >= next {
		return 0, nil
	}
	return s.sealTo(tr, PacketID(next-keepRecent), true)
}

// SealBefore seals all packets with TS < ts (plus any later-stamped
// packets whose IDs interleave below the covering watermark — harmless,
// they just go cold early). Returns the number of hot packets sealed.
func (s *Store) SealBefore(ts time.Duration) (int, error) {
	tr := s.tier.Load()
	if tr == nil {
		return 0, nil
	}
	var limit PacketID
	for _, sh := range s.shards {
		sh.mu.RLock()
		cut := sort.Search(len(sh.packets), func(i int) bool { return sh.packets[i].TS >= ts })
		if cut > 0 {
			if last := sh.packets[cut-1].ID + 1; last > limit {
				limit = last
			}
		}
		sh.mu.RUnlock()
	}
	if limit == 0 {
		return 0, nil
	}
	return s.sealTo(tr, limit, true)
}

// sealTo seals all packets with ID < limit. wait=false is the ingest-path
// trigger: if another seal or compaction is running, skip — the next
// batch will retry. Returns the number of hot packets moved cold.
func (s *Store) sealTo(tr *tier, limit PacketID, wait bool) (int, error) {
	if wait {
		tr.sealMu.Lock()
	} else if !tr.sealMu.TryLock() {
		return 0, nil
	}
	defer tr.sealMu.Unlock()
	if uint64(limit) <= tr.sealedBelow.Load() {
		return 0, nil
	}
	// Collect the prefix under shard read locks. The copies are snapshots:
	// concurrent ingest only ever appends/inserts at IDs >= limit, so the
	// prefix cannot change between collection and the swap below.
	runs := make([][]StoredPacket, 0, len(s.shards))
	for _, sh := range s.shards {
		sh.mu.RLock()
		cut := sort.Search(len(sh.packets), func(i int) bool { return sh.packets[i].ID >= limit })
		if cut > 0 {
			runs = append(runs, append([]StoredPacket(nil), sh.packets[:cut]...))
		}
		sh.mu.RUnlock()
	}
	if len(runs) == 0 {
		return 0, nil
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	merged := make([]StoredPacket, 0, total)
	cur := newMergeCursor(runs)
	for sp := cur.next(); sp != nil; sp = cur.next() {
		merged = append(merged, *sp)
	}
	newSegs, err := tr.writeSegments(merged, false)
	if err != nil {
		return 0, err
	}
	tierHook("seal-files")
	if err := tr.writeManifestLocked(limit, append(append([]*tierSegment(nil), tr.segs...), newSegs...)); err != nil {
		return 0, err
	}
	tierHook("seal-manifest")
	// Commit point passed: swap the registry and trim the hot slabs under
	// tier.mu + all shard locks so no query sees the rows double or gone.
	var removed int
	var freed uint64
	tr.mu.Lock()
	for _, sh := range s.shards {
		sh.lock()
	}
	for _, sh := range s.shards {
		n, b := sh.trimBelowID(limit)
		removed += n
		freed += b
	}
	tr.segs = append(tr.segs, newSegs...)
	tr.sealedBelow.Store(uint64(limit))
	tr.coldPackets += uint64(total)
	for _, sg := range newSegs {
		tr.coldBytes += sg.fileBytes
	}
	tr.recomputeTSSortedLocked()
	tr.publishLocked()
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
	tr.mu.Unlock()
	tierHook("seal-swap")
	if removed > 0 {
		s.totPackets.Add(^uint64(removed) + 1)
		s.totBytes.Add(^freed + 1)
	}
	tr.seals.Add(1)
	tr.sealedPackets.Add(uint64(total))
	obsTierSeals.Inc()
	obsTierSealedPkts.Add(uint64(total))
	return removed, nil
}

// writeSegments chunks one (TS, ID)-sorted run into target-sized segment
// files and writes them durably. Seals chunk by ceiling (segments at most
// one target, balanced so there is no sliver tail); compaction chunks by
// floor (segments between one and two targets), so a merge always emits
// strictly fewer files than it consumed and the compactor converges
// instead of re-cutting the same undersized pieces forever. Caller holds
// sealMu.
func (tr *tier) writeSegments(rows []StoredPacket, compact bool) ([]*tierSegment, error) {
	n := len(rows)
	target := tr.policy.SegmentPackets
	nchunks := (n + target - 1) / target
	if compact {
		nchunks = n / target
	}
	if nchunks < 1 {
		nchunks = 1
	}
	for (n+nchunks-1)/nchunks > segMaxCount {
		nchunks++
	}
	size := (n + nchunks - 1) / nchunks // balanced: no sliver tail
	encode := encodeSegment
	if tr.policy.Format == segVersion1 {
		encode = encodeSegmentV1
	}
	var out []*tierSegment
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		blob, meta, err := encode(rows[lo:hi])
		if err != nil {
			return nil, err
		}
		seq := tr.nextSeq
		name := tierSegName(seq)
		tr.nextSeq++
		if err := writeFileAtomic(tr.dir, name, blob); err != nil {
			return nil, err
		}
		out = append(out, &tierSegment{name: name, seq: seq, meta: meta, fileBytes: uint64(len(blob))})
	}
	return out, nil
}

// CompactTier merges runs of adjacent undersized segments into
// target-sized ones, returning how many input segments were replaced.
// Merging re-sorts via the k-way cursor — adjacent seals can interleave
// in (TS, ID) under concurrent serial ingest, so concatenation would be
// wrong. A decode failure aborts compaction (never drop data we cannot
// re-encode) and surfaces on TierStats.Err.
func (s *Store) CompactTier() (int, error) {
	tr := s.tier.Load()
	if tr == nil {
		return 0, nil
	}
	tr.sealMu.Lock()
	defer tr.sealMu.Unlock()
	replaced := 0
	for pass := 0; pass < len(tr.segs); pass++ {
		lo, hi := tr.findCompactRun()
		if hi <= lo {
			break
		}
		runs := make([][]StoredPacket, 0, hi-lo)
		var oldBytes uint64
		for _, sg := range tr.segs[lo:hi] {
			// nil block source: a compaction sweep reads each input once
			// and deletes it — caching its blocks would only evict rows
			// queries still want.
			rows, err := tr.readSegRows(sg, nil)
			if err != nil {
				tr.noteErr(err)
				return replaced, err
			}
			runs = append(runs, rows)
			oldBytes += sg.fileBytes
		}
		total := 0
		for _, r := range runs {
			total += len(r)
		}
		merged := make([]StoredPacket, 0, total)
		cur := newMergeCursor(runs)
		for sp := cur.next(); sp != nil; sp = cur.next() {
			merged = append(merged, *sp)
		}
		newSegs, err := tr.writeSegments(merged, true)
		if err != nil {
			return replaced, err
		}
		tierHook("compact-files")
		newList := make([]*tierSegment, 0, len(tr.segs)-(hi-lo)+len(newSegs))
		newList = append(newList, tr.segs[:lo]...)
		newList = append(newList, newSegs...)
		newList = append(newList, tr.segs[hi:]...)
		if err := tr.writeManifestLocked(PacketID(tr.sealedBelow.Load()), newList); err != nil {
			return replaced, err
		}
		tierHook("compact-manifest")
		old := tr.segs[lo:hi:hi]
		var newBytes uint64
		for _, sg := range newSegs {
			newBytes += sg.fileBytes
		}
		tr.mu.Lock()
		tr.segs = newList
		tr.coldBytes += newBytes - oldBytes
		tr.recomputeTSSortedLocked()
		tr.publishLocked()
		tr.mu.Unlock()
		tr.dropCached(old)
		for _, sg := range old {
			os.Remove(filepath.Join(tr.dir, sg.name))
		}
		replaced += len(old)
		tr.compactions.Add(1)
		obsTierCompactions.Inc()
	}
	return replaced, nil
}

// findCompactRun picks the first maximal run of >=2 adjacent segments all
// under the size target whose total stays within two targets (so one
// compaction emits at most two full segments). Runs that would re-chunk
// into as many segments as they replace are skipped — every accepted run
// strictly shrinks the registry, so the compaction loop terminates.
// Caller holds sealMu.
func (tr *tier) findCompactRun() (lo, hi int) {
	target := tr.policy.SegmentPackets
	for i := 0; i < len(tr.segs); i++ {
		if tr.segs[i].meta.count >= target {
			continue
		}
		total := tr.segs[i].meta.count
		j := i + 1
		for j < len(tr.segs) && tr.segs[j].meta.count < target && total+tr.segs[j].meta.count <= 2*target {
			total += tr.segs[j].meta.count
			j++
		}
		if out := max(1, total/target); j-i >= 2 && out < j-i {
			return i, j
		}
		i = j - 1
	}
	return 0, 0
}

// RetainCold deletes cold segments whose newest packet is older than
// `before` — the cold tier's retention valve (the tiered analogue of
// EvictBefore's data drop). Flows that ended before the horizon are
// dropped with them. Returns segments deleted.
func (s *Store) RetainCold(before time.Duration) (int, error) {
	tr := s.tier.Load()
	if tr == nil {
		return 0, nil
	}
	tr.sealMu.Lock()
	defer tr.sealMu.Unlock()
	var keep, drop []*tierSegment
	for _, sg := range tr.segs {
		if sg.meta.maxTS < before {
			drop = append(drop, sg)
		} else {
			keep = append(keep, sg)
		}
	}
	if len(drop) == 0 {
		return 0, nil
	}
	if err := tr.writeManifestLocked(PacketID(tr.sealedBelow.Load()), keep); err != nil {
		return 0, err
	}
	var droppedPkts, droppedBytes uint64
	for _, sg := range drop {
		droppedPkts += uint64(sg.meta.count)
		droppedBytes += sg.fileBytes
	}
	tr.mu.Lock()
	for _, sh := range s.shards {
		sh.lock()
	}
	tr.segs = keep
	tr.recomputeTSSortedLocked()
	tr.coldPackets -= droppedPkts
	tr.coldBytes -= droppedBytes
	for _, sh := range s.shards {
		for k, fm := range sh.flows {
			if fm.Last < before {
				delete(sh.flows, k)
			}
		}
	}
	tr.publishLocked()
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
	tr.mu.Unlock()
	tr.dropCached(drop)
	for _, sg := range drop {
		os.Remove(filepath.Join(tr.dir, sg.name))
	}
	tr.mu.Lock()
	tr.publishLocked()
	tr.mu.Unlock()
	obsTierRetained.Add(uint64(len(drop)))
	return len(drop), nil
}

// dropCached invalidates the decoded-block cache entries of segments
// whose files are being removed (compaction inputs, retention drops).
func (tr *tier) dropCached(segs []*tierSegment) {
	if tr.cache == nil {
		return
	}
	seqs := make(map[uint64]bool, len(segs))
	for _, sg := range segs {
		if sg.seq != segSeqInvalid {
			seqs[sg.seq] = true
		}
	}
	tr.cache.dropSegs(seqs)
}

// StartTierCompactor runs CompactTier (and retention, when the policy
// sets Retain) on a fixed cadence until the returned stop function is
// called. No-op (returning a callable stop) when tiering is off.
func (s *Store) StartTierCompactor(interval time.Duration) (stop func()) {
	tr := s.tier.Load()
	if tr == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.CompactTier()
				if tr.policy.Retain > 0 {
					s.RetainCold(time.Duration(s.lastTS.Load()) - tr.policy.Retain)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// errMmapUnavailable makes mmapFile fall back to os.ReadFile (non-Linux
// builds, zero-length files, size overflow). Never surfaced to callers.
var errMmapUnavailable = errors.New("datastore: mmap unavailable")

// tierNoMmapEnv disables the mmap segment read path at runtime (the
// escape hatch for filesystems where mapping misbehaves); segments then
// load through os.ReadFile as before.
const tierNoMmapEnv = "CAMPUSLAB_NO_MMAP"

// loadSeg is the single segment read path: it maps (or, off Linux, with
// CAMPUSLAB_NO_MMAP=1, or on any mmap failure, reads) the file exactly
// once and frame-validates it. Column CRCs verify lazily on access, so a
// query pays each checksum at most once per segment read — never twice,
// as the old split readSeg/readSegRows paths could. The release func must
// be called once decoding is done; decoded rows never alias the mapping.
// Caller holds tr.mu.RLock (registry membership) or sealMu (mutators).
func (tr *tier) loadSeg(sg *tierSegment) (*segBlob, func(), error) {
	path := filepath.Join(tr.dir, sg.name)
	if mmapSupported && os.Getenv(tierNoMmapEnv) != "1" {
		if b, unmap, err := mmapFile(path); err == nil {
			sb, perr := parseSegment(b)
			if perr != nil {
				unmap()
				return nil, nil, perr
			}
			return sb, unmap, nil
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	sb, err := parseSegment(b)
	if err != nil {
		return nil, nil, err
	}
	return sb, func() {}, nil
}

// readSegRows fully decodes one segment file through loadSeg; bs routes
// its data blocks through the tier cache (nil = bypass).
func (tr *tier) readSegRows(sg *tierSegment, bs *blockSource) ([]StoredPacket, error) {
	sb, done, err := tr.loadSeg(sg)
	if err != nil {
		return nil, err
	}
	defer done()
	return sb.decodeBlobRows(bs)
}

// blockSourceFor returns sg's cache handle (nil when caching is off).
func (tr *tier) blockSourceFor(sg *tierSegment) *blockSource {
	if tr.cache == nil || sg.seq == segSeqInvalid {
		return nil
	}
	return &blockSource{cache: tr.cache, seq: sg.seq}
}

// segsInWindow returns registered segments overlapping the half-open TS
// window (to < 0 = unbounded). When the registry's TS bounds are sorted
// (tsSorted — the steady state), both window endpoints binary-search:
// the result is the contiguous run from the first segment with
// maxTS >= from up to the first with minTS >= to. Otherwise it falls
// back to the linear scan. Caller holds tr.mu.RLock; the returned slice
// aliases the registry and is only valid while the lock is held.
func (tr *tier) segsInWindow(from, to time.Duration) []*tierSegment {
	if tr.tsSorted {
		lo := 0
		if from > 0 {
			lo = sort.Search(len(tr.segs), func(i int) bool { return tr.segs[i].meta.maxTS >= from })
		}
		hi := len(tr.segs)
		if to >= 0 {
			hi = sort.Search(len(tr.segs), func(i int) bool { return tr.segs[i].meta.minTS >= to })
		}
		if hi < lo {
			hi = lo
		}
		return tr.segs[lo:hi]
	}
	var out []*tierSegment
	for _, sg := range tr.segs {
		if sg.meta.maxTS < from || (to >= 0 && sg.meta.minTS >= to) {
			continue
		}
		out = append(out, sg)
	}
	return out
}

// tsWindow returns the row interval [rlo, rhi) of tss within [from, to).
func tsWindow(tss []time.Duration, from, to time.Duration) (int, int) {
	lo := 0
	if from > 0 {
		lo = sort.Search(len(tss), func(i int) bool { return tss[i] >= from })
	}
	hi := len(tss)
	if to >= 0 {
		hi = sort.Search(len(tss), func(i int) bool { return tss[i] >= to })
	}
	return lo, hi
}

// coldWindowRuns decodes every segment overlapping the window into
// (TS, ID)-sorted runs — the cold half of the serial scan paths
// (scanRange and everything built on it). No zone pruning: this is the
// reference semantics, every row in the window is visited. Caller holds
// tr.mu.RLock.
func (s *Store) coldWindowRuns(tr *tier, from, to time.Duration) [][]StoredPacket {
	segs := tr.segsInWindow(from, to)
	runs := make([][]StoredPacket, len(segs))
	parallel.For(len(segs), int(s.queryWorkers.Load()), func(i int) {
		sg := segs[i]
		rows, err := tr.readSegRows(sg, tr.blockSourceFor(sg))
		if err != nil {
			tr.noteErr(err)
			return
		}
		lo := 0
		if from > 0 {
			lo = sort.Search(len(rows), func(j int) bool { return rows[j].TS >= from })
		}
		hi := len(rows)
		if to >= 0 {
			hi = sort.Search(len(rows), func(j int) bool { return rows[j].TS >= to })
		}
		if lo < hi {
			runs[i] = rows[lo:hi]
		}
	})
	// Segments were visited in registry order, so compacting the non-empty
	// runs in place preserves the (TS, ID) merge order downstream.
	out := runs[:0]
	for _, r := range runs {
		if len(r) > 0 {
			out = append(out, r)
		}
	}
	tr.scanned.Add(uint64(len(segs)))
	obsTierScanned.Add(uint64(len(segs)))
	return out
}

// coldSelect evaluates a filter over the cold tier, returning matching
// rows as per-segment (TS, ID)-sorted runs for the global merge. Segments
// are pruned by TS bounds and zone maps before any column is read;
// surviving segments decode in parallel, index-first (candidate rows are
// intersected from the segment's posting lists, and only candidates are
// materialized). Caller holds tr.mu.RLock.
func (s *Store) coldSelect(tr *tier, f *Filter, from, to time.Duration, limit int, qs *queryStats) [][]StoredPacket {
	segs := tr.pruneSegs(f, from, to)
	if len(segs) == 0 {
		return nil
	}
	runs := make([][]StoredPacket, len(segs))
	parallel.For(len(segs), int(s.queryWorkers.Load()), func(i int) {
		rows, err := s.segSelect(tr, segs[i], f, from, to, limit, qs)
		if err != nil {
			tr.noteErr(err)
			return
		}
		runs[i] = rows
	})
	out := runs[:0]
	for _, r := range runs {
		if len(r) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// pruneSegs applies TS-bound and zone-map pruning, recording the prune
// accounting (pruned = registered segments minus decoded ones, so the
// E17 prune rate covers both bounds and zone maps). Caller holds
// tr.mu.RLock.
func (tr *tier) pruneSegs(f *Filter, from, to time.Duration) []*tierSegment {
	inWindow := tr.segsInWindow(from, to)
	considered := len(tr.segs)
	var keep []*tierSegment
	for _, sg := range inWindow {
		if f.plan.indexable && !sg.meta.zone.mayMatch(f.plan.keys) {
			continue
		}
		keep = append(keep, sg)
	}
	tr.scanned.Add(uint64(len(keep)))
	tr.pruned.Add(uint64(considered - len(keep)))
	obsTierScanned.Add(uint64(len(keep)))
	obsTierPruned.Add(uint64(considered - len(keep)))
	return keep
}

// segSelect evaluates the filter over one segment. Indexable plans touch
// only the ID/TS/index columns plus the candidate rows' bytes; a plan
// with no index keys decodes the window and runs the full predicate.
func (s *Store) segSelect(tr *tier, sg *tierSegment, f *Filter, from, to time.Duration, limit int, qs *queryStats) ([]StoredPacket, error) {
	sb, done, err := tr.loadSeg(sg)
	if err != nil {
		return nil, err
	}
	defer done()
	ids, tss, err := sb.decodeTimeID()
	if err != nil {
		return nil, err
	}
	rlo, rhi := tsWindow(tss, from, to)
	if rlo >= rhi {
		return nil, nil
	}
	ix, err := sb.decodeIndex()
	if err != nil {
		return nil, err
	}
	var sel []uint32
	if cand, ok := ix.segCandidates(&f.plan, uint32(rlo), uint32(rhi)); ok {
		if len(cand) == 0 {
			return nil, nil
		}
		sel = cand
		qs.rowsScanned.Add(uint64(len(cand)))
	} else {
		sel = make([]uint32, rhi-rlo)
		for i := range sel {
			sel[i] = uint32(rlo + i)
		}
		qs.rowsScanned.Add(uint64(rhi - rlo))
	}
	rows, err := sb.rowsAt(sel, ix, ids, tss, tr.blockSourceFor(sg))
	if err != nil {
		return nil, err
	}
	var out []StoredPacket
	for i := range rows {
		sp := &rows[i]
		if f.plan.indexable {
			if f.plan.residual != nil && !f.plan.residual(sp) {
				continue
			}
		} else if !f.Match(sp) {
			continue
		}
		out = append(out, *sp)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// coldCount counts filter matches in the cold tier. With an indexable
// plan and no residual, the count comes straight from the candidate
// row lists — no data column is inflated. Caller holds tr.mu.RLock.
func (s *Store) coldCount(tr *tier, f *Filter, from, to time.Duration, qs *queryStats) int {
	segs := tr.pruneSegs(f, from, to)
	if len(segs) == 0 {
		return 0
	}
	counts := make([]int, len(segs))
	parallel.For(len(segs), int(s.queryWorkers.Load()), func(i int) {
		n, err := s.segCount(tr, segs[i], f, from, to, qs)
		if err != nil {
			tr.noteErr(err)
			return
		}
		counts[i] = n
	})
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

func (s *Store) segCount(tr *tier, sg *tierSegment, f *Filter, from, to time.Duration, qs *queryStats) (int, error) {
	sb, done, err := tr.loadSeg(sg)
	if err != nil {
		return 0, err
	}
	defer done()
	ids, tss, err := sb.decodeTimeID()
	if err != nil {
		return 0, err
	}
	rlo, rhi := tsWindow(tss, from, to)
	if rlo >= rhi {
		return 0, nil
	}
	ix, err := sb.decodeIndex()
	if err != nil {
		return 0, err
	}
	if cand, ok := ix.segCandidates(&f.plan, uint32(rlo), uint32(rhi)); ok {
		qs.rowsScanned.Add(uint64(len(cand)))
		if f.plan.residual == nil {
			return len(cand), nil
		}
		if len(cand) == 0 {
			return 0, nil
		}
		rows, err := sb.rowsAt(cand, ix, ids, tss, tr.blockSourceFor(sg))
		if err != nil {
			return 0, err
		}
		n := 0
		for i := range rows {
			if f.plan.residual(&rows[i]) {
				n++
			}
		}
		return n, nil
	}
	qs.rowsScanned.Add(uint64(rhi - rlo))
	sel := make([]uint32, rhi-rlo)
	for i := range sel {
		sel[i] = uint32(rlo + i)
	}
	rows, err := sb.rowsAt(sel, ix, ids, tss, tr.blockSourceFor(sg))
	if err != nil {
		return 0, err
	}
	n := 0
	for i := range rows {
		if f.Match(&rows[i]) {
			n++
		}
	}
	return n, nil
}

// coldPacket finds one packet by ID in the cold tier. Segment ID ranges
// can overlap across seal generations (chunking follows (TS, ID) order,
// not ID order), so every range-covering segment is checked.
func (s *Store) coldPacket(tr *tier, id PacketID) (StoredPacket, bool) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	for _, sg := range tr.segs {
		if id < sg.meta.minID || id > sg.meta.maxID {
			continue
		}
		if sp, ok := s.segPacket(tr, sg, id); ok {
			return sp, true
		}
	}
	return StoredPacket{}, false
}

// segPacket looks one ID up in one segment; decode errors are noted and
// reported as a miss so the scan can try overlapping segments.
func (s *Store) segPacket(tr *tier, sg *tierSegment, id PacketID) (StoredPacket, bool) {
	sb, done, err := tr.loadSeg(sg)
	if err != nil {
		tr.noteErr(err)
		return StoredPacket{}, false
	}
	defer done()
	ids, tss, err := sb.decodeTimeID()
	if err != nil {
		tr.noteErr(err)
		return StoredPacket{}, false
	}
	row := -1
	for i, v := range ids {
		if v == id {
			row = i
			break
		}
	}
	if row < 0 {
		return StoredPacket{}, false
	}
	ix, err := sb.decodeIndex()
	if err != nil {
		tr.noteErr(err)
		return StoredPacket{}, false
	}
	rows, err := sb.rowsAt([]uint32{uint32(row)}, ix, ids, tss, tr.blockSourceFor(sg))
	if err != nil {
		tr.noteErr(err)
		return StoredPacket{}, false
	}
	return rows[0], true
}

// Little-endian append/read helpers for the manifest.
func le16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }
func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func le64(b []byte, v uint64) []byte {
	return le32(le32(b, uint32(v)), uint32(v>>32))
}
func rd16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func rd32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func rd64(b []byte) uint64 { return uint64(rd32(b)) | uint64(rd32(b[4:]))<<32 }
