package datastore

import (
	"net/netip"
	"regexp"
	"sort"
	"time"

	"campuslab/internal/eventlog"
)

// §5 promises a store where packet data is "linked" to complementary
// sensor data. Correlation joins sensor events to flows on (address, time
// window): a firewall deny naming 198.51.100.7 at t links to every flow
// touching that address within the window around t.

// Correlation is one (event, flow) link.
type Correlation struct {
	Event eventlog.Event
	Flow  FlowMeta
	// Gap is |event time - nearest flow activity|, the join quality.
	Gap time.Duration
}

// ipInMessage extracts dotted-quad addresses from event text.
var ipInMessage = regexp.MustCompile(`\b(\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3})\b`)

// CorrelateEvents links each stored event to flows that involve an IP
// address mentioned in the event's message and that were active within
// ±window of the event. Results are ordered by event time.
func (s *Store) CorrelateEvents(window time.Duration) []Correlation {
	if window <= 0 {
		window = 5 * time.Second
	}
	unlock := s.rlockAll()
	defer unlock()
	s.eventsMu.RLock()
	defer s.eventsMu.RUnlock()

	// Index flows by endpoint address. Each address's flow list is sorted
	// deterministically so results don't depend on shard layout.
	byAddr := make(map[netip.Addr][]*FlowMeta)
	for _, sh := range s.shards {
		for _, fm := range sh.flows {
			byAddr[fm.Key.SrcIP] = append(byAddr[fm.Key.SrcIP], fm)
			byAddr[fm.Key.DstIP] = append(byAddr[fm.Key.DstIP], fm)
		}
	}
	for _, fms := range byAddr {
		sort.Slice(fms, func(i, j int) bool {
			if fms[i].First != fms[j].First {
				return fms[i].First < fms[j].First
			}
			return fms[i].Key.Hash() < fms[j].Key.Hash()
		})
	}

	var out []Correlation
	for _, ev := range s.events {
		for _, m := range ipInMessage.FindAllString(ev.Message, -1) {
			addr, err := netip.ParseAddr(m)
			if err != nil {
				continue
			}
			for _, fm := range byAddr[addr] {
				// Active within the window?
				if fm.Last < ev.TS-window || fm.First > ev.TS+window {
					continue
				}
				gap := time.Duration(0)
				if fm.Last < ev.TS {
					gap = ev.TS - fm.Last
				} else if fm.First > ev.TS {
					gap = fm.First - ev.TS
				}
				cp := *fm
				cp.pktIDs = append([]PacketID(nil), fm.pktIDs...)
				out = append(out, Correlation{Event: ev, Flow: cp, Gap: gap})
			}
		}
	}
	return out
}
