// Micro-benchmarks for the parallel offline loop (DESIGN.md §4): sharded
// ingest, concurrent feature extraction, and parallel forest training.
// Each benchmark sweeps worker counts so a single run shows the scaling
// curve; combine with -cpu 1,4 to also vary GOMAXPROCS:
//
//	go test -bench='StoreIngest|FromFlows|FitForest' -benchmem -cpu 1,4
package campuslab_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/traffic"
)

// benchFrames synthesizes one labeled benign+attack episode, reused across
// iterations (Frame.Data is owned by the store's copy path, not mutated).
func benchFrames(b *testing.B) []traffic.Frame {
	b.Helper()
	plan := traffic.DefaultPlan(40)
	benign := traffic.NewCampus(traffic.Profile{
		Plan: plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: 8101,
	})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(5),
		Start: 600 * time.Millisecond, Duration: 2800 * time.Millisecond, Rate: 800, Seed: 8102,
	})
	return traffic.Collect(traffic.NewMerge(benign, amp), 0)
}

func BenchmarkStoreIngest(b *testing.B) {
	frames := benchFrames(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(framesBytes(frames)))
			for i := 0; i < b.N; i++ {
				st := datastore.New()
				st.AddBatch(frames, workers)
			}
			b.ReportMetric(float64(len(frames)), "pkts")
		})
	}
	// The durability axis: the same ingest through a write-ahead log under
	// each fsync policy, against the no-WAL rows above. "none" isolates
	// the framing/CRC cost, "interval" is the deployed default, "always"
	// is the per-batch-fsync worst case.
	for _, pol := range []datastore.FsyncPolicy{
		datastore.FsyncNone, datastore.FsyncInterval, datastore.FsyncAlways,
	} {
		b.Run(fmt.Sprintf("wal=%v", pol), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(framesBytes(frames)))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st, _, err := datastore.Recover(datastore.DurableConfig{
					Dir: b.TempDir(), Fsync: pol, Shards: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := st.AddBatch(frames, 4); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st.CloseWAL()
				b.StartTimer()
			}
			b.ReportMetric(float64(len(frames)), "pkts")
		})
	}
}

func BenchmarkFromFlows(b *testing.B) {
	frames := benchFrames(b)
	plan := traffic.DefaultPlan(40)
	st := datastore.New()
	st.AddBatch(frames, 0)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var n int
			for i := 0; i < b.N; i++ {
				n = features.FromFlowsWorkers(st, plan.CampusPrefix, workers).Len()
			}
			b.ReportMetric(float64(n), "flows")
		})
	}
}

func BenchmarkFitForest(b *testing.B) {
	// A synthetic dataset sized like the flow datasets the experiments
	// train on, so tree depth and split costs are representative.
	r := rand.New(rand.NewSource(8103))
	d := &features.Dataset{Schema: make([]string, 16)}
	for i := range d.Schema {
		d.Schema[i] = fmt.Sprintf("f%d", i)
	}
	for i := 0; i < 4000; i++ {
		x := make([]float64, 16)
		c := i % 2
		for j := range x {
			x[j] = float64(c)*2 + r.NormFloat64()
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, c)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ml.FitForest(d, 2, ml.ForestConfig{
					Trees: 30, MaxDepth: 10, Seed: 8104, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func framesBytes(frames []traffic.Frame) uint64 {
	var n uint64
	for i := range frames {
		n += uint64(len(frames[i].Data))
	}
	return n
}
