module campuslab

go 1.22
