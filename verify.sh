#!/bin/sh
# verify.sh — the repo's tier-1 verification gate.
#
# Runs the full static + test suite, then a focused race pass over the
# packages with real concurrency (control-loop fallback chains, sharded
# datastore, fault injectors). CI and pre-commit both call this script;
# a clean exit is the merge bar.
set -eu

cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./... (with coverage gate)"
go test -coverprofile=coverage.out ./...
COVER=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
# Ratchet floor: measured 83.8% total when the fleet subsystem landed
# (was 82.0). Raise the floor when coverage rises; never lower it to
# merge.
COVER_FLOOR=83.0
echo "    total coverage: ${COVER}% (floor ${COVER_FLOOR}%)"
awk -v c="$COVER" -v f="$COVER_FLOOR" 'BEGIN { exit (c+0 >= f+0) ? 0 : 1 }' || {
    echo "verify: FAIL — coverage ${COVER}% below floor ${COVER_FLOOR}%" >&2
    exit 1
}

echo "==> go test -race (control, datastore, faults)"
go test -race ./internal/control ./internal/datastore ./internal/faults

echo "==> fleet race gate (concurrent campus streams, coordinator during live ingest)"
go test -race -run 'TestRaceConcurrentCampusStreams|TestRaceCoordinatorDuringStreaming|TestStreamMatchesLocalIngest' ./internal/fleet

echo "==> fleet coverage gate (package floor 85%)"
go test -coverprofile=fleet_coverage.out ./internal/fleet
FLEET_COVER=$(go tool cover -func=fleet_coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "    fleet coverage: ${FLEET_COVER}% (floor 85.0%)"
awk -v c="$FLEET_COVER" 'BEGIN { exit (c+0 >= 85.0) ? 0 : 1 }' || {
    echo "verify: FAIL — fleet coverage ${FLEET_COVER}% below floor 85.0%" >&2
    exit 1
}

echo "==> go test -race (dataplane fast path: concurrent install vs batch)"
go test -race -run 'TestConcurrentInstallDuringBatch|TestConcurrentEnsembleInstallDuringBatch|TestSwitchPipelineEquivalence|TestProcessBatch|TestClassifyBatch' ./internal/dataplane

echo "==> ensemble budget gate (over budget must degrade, never error)"
go test -run 'TestEnsembleBudgetDegradation|TestEnsembleHotPathAllocs' ./internal/dataplane

echo "==> bench smoke (compiled fast path, must stay 0 allocs/op)"
go test -run=NONE -bench=SwitchProcess -benchtime=100x ./internal/dataplane
go test -run=NONE -bench=BenchmarkEnsembleInference -benchtime=20x ./internal/dataplane

echo "==> bench smoke (store query engine: index vs scan)"
go test -run=NONE -bench='BenchmarkSelect$|BenchmarkCount$' -benchtime=5x ./internal/datastore

echo "==> bench smoke (cold tier: seal, segment query sweep v1/v2, cache, eviction)"
go test -run=NONE -bench='BenchmarkSeal$|BenchmarkSegmentQuery|BenchmarkColdSelect|BenchmarkEvictBefore' -benchtime=2x ./internal/datastore

echo "==> tiered-store equivalence gate (tiered == untiered, byte for byte, both segment formats)"
go test -run 'TestTieredStoreEquivalence|TestTierFormatEquivalence' -short ./internal/datastore

echo "==> tier cache race gate (queries vs seal/compact churn with the block cache on)"
go test -race -run 'TestTierCacheQueryCompactRace|TestTierIngestSealQueryRace' ./internal/datastore

echo "==> fuzz smoke (packet parser, labd dispatcher, filter parser, ensemble compiler, WAL replay, segment codec)"
go test -run=FuzzParse -fuzz=FuzzParse -fuzztime=10s ./internal/packet
go test -run=FuzzDispatch -fuzz=FuzzDispatch -fuzztime=5s ./cmd/labd
go test -run=FuzzParseFilter -fuzz=FuzzParseFilter -fuzztime=5s ./internal/datastore
go test -run=FuzzEnsembleCompile -fuzz=FuzzEnsembleCompile -fuzztime=5s ./internal/dataplane
go test -run=FuzzWALReplay -fuzz=FuzzWALReplay -fuzztime=5s ./internal/datastore
go test -run=FuzzSegmentDecode -fuzz=FuzzSegmentDecode -fuzztime=5s ./internal/datastore
go test -run=FuzzFleetFrame -fuzz=FuzzFleetFrame -fuzztime=5s ./internal/fleet

echo "==> fleet crash gate (torn mid-batch cut: all-or-nothing, retry never duplicates, acked == durable)"
go test -run 'TestCrashMidBatchDurability|TestServerDedupesRetriedBatch|TestServerRejectsProtocolViolations' ./internal/fleet

echo "==> crash-recovery gate (kill -9 mid-ingest must lose nothing acked)"
go test -run 'TestWALCrashKill9|TestRecoverTornThenCrashAgain|TestConcurrentIngestCheckpointQuery' ./internal/datastore

echo "==> tier crash gate (kill -9 mid-seal/mid-compact must lose nothing acked)"
go test -run 'TestTierCrashKill9|TestTierCrashSwapEquivalence' ./internal/datastore

echo "==> chaos-soak smoke (E16: durability + self-healing lifecycle)"
go test -run 'TestAllExperimentsRun/E16' ./internal/experiments

echo "==> bench smoke (crash-to-ready recovery time)"
go test -run=NONE -bench=BenchmarkWALRecovery -benchtime=5x ./internal/datastore

echo "==> bench smoke (fleet ingest: loopback TCP vs in-process)"
go test -run=NONE -bench=BenchmarkFleetIngest -benchtime=5x ./internal/fleet

echo "verify: OK"
