#!/bin/sh
# verify.sh — the repo's tier-1 verification gate.
#
# Runs the full static + test suite, then a focused race pass over the
# packages with real concurrency (control-loop fallback chains, sharded
# datastore, fault injectors). CI and pre-commit both call this script;
# a clean exit is the merge bar.
set -eu

cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (control, datastore, faults)"
go test -race ./internal/control ./internal/datastore ./internal/faults

echo "==> go test -race (dataplane fast path: concurrent install vs batch)"
go test -race -run 'TestConcurrentInstallDuringBatch|TestSwitchPipelineEquivalence|TestProcessBatch|TestClassifyBatch' ./internal/dataplane

echo "==> bench smoke (compiled fast path, must stay 0 allocs/op)"
go test -run=NONE -bench=SwitchProcess -benchtime=100x ./internal/dataplane

echo "verify: OK"
