// Quickstart: the whole paper in ~60 lines. A campus network is used as a
// data source (collect labeled traffic into the data store) and as a
// testbed (road-test the deployable model), with the Figure 2 development
// loop in between.
package main

import (
	"fmt"
	"log"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/core"
	"campuslab/internal/roadtest"
	"campuslab/internal/traffic"
)

func main() {
	log.SetFlags(0)

	// 1. The campus network: departments, hosts, realistic app mix.
	plan := traffic.DefaultPlan(50)
	lab, err := core.NewLab(core.Config{Name: "quickstart-campus", Plan: plan})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Campus as DATA SOURCE: collect a day-in-the-life scenario that
	// includes a DNS amplification attack. Ground truth rides along —
	// the simulated campus gives us the labels real networks lack.
	scenario := func(seedA, seedB int64) traffic.Generator {
		benign := traffic.NewCampus(traffic.Profile{
			Plan: plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: seedA,
		})
		attack := traffic.NewAttack(traffic.AttackConfig{
			Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(7),
			Start: time.Second, Duration: 2 * time.Second, Rate: 800, Seed: seedB,
		})
		return traffic.NewMerge(benign, attack)
	}
	cs, err := lab.Collect(scenario(1, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d packets (%d flows) into the data store\n",
		cs.Frames, cs.StoreStats.Flows)

	// 3. The development loop (Figure 2): black-box forest -> extracted
	// explainable tree -> compiled switch program.
	dep, err := lab.Develop(core.DevelopConfig{Target: traffic.LabelDNSAmp, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("black box: %d nodes; deployable tree: %d nodes (fidelity %.1f%%)\n",
		dep.BlackBox.TotalNodes(), dep.Extraction.Tree.NumNodes(), 100*dep.Extraction.Fidelity)
	fmt.Println("what the operator sees:")
	for _, r := range dep.Rules {
		fmt.Println("  " + r)
	}

	// 4. Campus as TESTBED: road-test on a held-out episode.
	rep, err := lab.RoadTest(dep, control.TierDataPlane, scenario(4, 5),
		roadtest.Spec{MinRecall: 0.9, MaxCollateral: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("road test:", rep.Summary())
}
