// Cross-campus reproducibility: §5's proposal in action. Three simulated
// universities each keep their data private but run the same open-sourced
// learning algorithm locally; the resulting models are compared across
// campuses, "suggesting a viable path for tackling the much-debated
// reproducibility problem in science in the era of AI/ML".
package main

import (
	"fmt"
	"log"
	"time"

	"campuslab/internal/core"
	"campuslab/internal/traffic"
)

func main() {
	log.SetFlags(0)
	specs := []core.CampusSpec{
		{Name: "ucsb", HostsPerDept: 30, FlowsPerSecond: 50, AttackRate: 700,
			StartHour: 14, Duration: 4 * time.Second, Seed: 31},
		{Name: "princeton", HostsPerDept: 45, FlowsPerSecond: 70, AttackRate: 500,
			StartHour: 17, Duration: 4 * time.Second, Seed: 32},
		{Name: "columbia", HostsPerDept: 25, FlowsPerSecond: 40, AttackRate: 900,
			StartHour: 17, Duration: 4 * time.Second, Seed: 33},
	}
	algo := core.Algorithm{Target: traffic.LabelDNSAmp, DeployDepth: 4, Seed: 34}

	fmt.Println("running the open-sourced dns-amp detector at 3 campuses...")
	res, err := core.RunCrossCampus(specs, algo)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s", "train\\test")
	for _, c := range res.Campuses {
		fmt.Printf("%12s", c)
	}
	fmt.Println()
	for i, c := range res.Campuses {
		fmt.Printf("%-12s", c)
		for j := range res.Campuses {
			fmt.Printf("%11.1f%%", 100*res.Accuracy[i][j])
		}
		fmt.Println()
	}
	fmt.Printf("\nself-campus accuracy:  %.1f%%\n", 100*res.DiagonalMean())
	fmt.Printf("transfer accuracy:     %.1f%%\n", 100*res.OffDiagonalMean())
	for i, c := range res.Campuses {
		fmt.Printf("extraction fidelity at %-10s %.1f%%\n", c+":", 100*res.Fidelity[i])
	}
	fmt.Println("\ndata never left any campus; only the algorithm traveled.")
}
