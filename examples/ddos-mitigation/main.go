// DDoS mitigation end to end: the §2 worked example — "drop attack traffic
// on ingress if confidence in detection is at least 90%" — run on all
// three inference tiers, showing the latency/flexibility tradeoff Figure 2
// separates into the fast and slow loops.
package main

import (
	"fmt"
	"log"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/core"
	"campuslab/internal/ml"
	"campuslab/internal/traffic"
)

func main() {
	log.SetFlags(0)
	plan := traffic.DefaultPlan(50)
	lab, err := core.NewLab(core.Config{Name: "ddos-campus", Plan: plan})
	if err != nil {
		log.Fatal(err)
	}

	train := traffic.NewMerge(
		traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: 11}),
		traffic.NewAttack(traffic.AttackConfig{
			Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(3),
			Start: 600 * time.Millisecond, Duration: 3 * time.Second, Rate: 900, Seed: 12,
		}),
	)
	if _, err := lab.Collect(train); err != nil {
		log.Fatal(err)
	}
	dep, err := lab.Develop(core.DevelopConfig{
		Target: traffic.LabelDNSAmp, MinConfidence: 0.9, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}

	replay := func() traffic.Generator {
		return traffic.NewMerge(
			traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 6 * time.Second, Seed: 14}),
			traffic.NewAttack(traffic.AttackConfig{
				Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(9),
				Start: time.Second, Duration: 4 * time.Second, Rate: 900, Seed: 15,
			}),
		)
	}

	fmt.Println("tier          recall   collateral  mitigation            inference(mean)")
	for _, tier := range []control.Tier{control.TierDataPlane, control.TierControlPlane, control.TierCloud} {
		cfg := control.LoopConfig{Tier: tier, Threshold: 0.9, Window: time.Second, MinEvidence: 30}
		var model ml.Classifier
		switch tier {
		case control.TierDataPlane:
			cfg.Program = dep.DropProgram
		case control.TierControlPlane:
			cfg.Program, model = dep.AlertProgram, dep.Extraction.Tree
		case control.TierCloud:
			cfg.Program, model = dep.AlertProgram, dep.BlackBox
		}
		cfg.Model = model
		loop, err := control.NewLoop(cfg)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := loop.Replay(replay())
		if err != nil {
			log.Fatal(err)
		}
		mitigation := "inline (first packet)"
		if tier != control.TierDataPlane {
			if len(stats.Mitigations) > 0 {
				m := stats.Mitigations[0]
				mitigation = fmt.Sprintf("%v after attack start", (m.InstalledAt - time.Second).Round(time.Millisecond))
			} else {
				mitigation = "none"
			}
		}
		infer := stats.InferMean
		if tier == control.TierDataPlane {
			infer = 100 * time.Nanosecond
		}
		fmt.Printf("%-13s %6.1f%%  %9.2f%%  %-21s %v\n",
			tier, 100*stats.DetectionRecall(), 100*stats.CollateralRate(), mitigation, infer)
	}
}
