// Threat hunt: a security analyst's session against the campus data store.
// Everything §5 promises the store enables happens in one sitting:
// retrospective beacon hunting over retained history, streaming scan
// detection, filter-language triage queries, an explanation with a
// counterfactual for the operator, and a differentially-private aggregate
// release for a cross-campus collaboration.
package main

import (
	"fmt"
	"log"
	"time"

	"campuslab/internal/datastore"
	"campuslab/internal/detect"
	"campuslab/internal/features"
	"campuslab/internal/ml"
	"campuslab/internal/privacy"
	"campuslab/internal/traffic"
	"campuslab/internal/xai"
)

func main() {
	log.SetFlags(0)
	plan := traffic.DefaultPlan(40)
	campus := plan.CampusPrefix
	infected := plan.Host(12)

	// A day of traffic with a scan, a beacon, and an amplification attack
	// buried in it — already collected into the store.
	st := datastore.New()
	g := traffic.NewMerge(
		traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 50, Duration: 10 * time.Second, Seed: 61}),
		traffic.NewAttack(traffic.AttackConfig{Kind: traffic.LabelPortScan, Plan: plan,
			Start: 2 * time.Second, Duration: 5 * time.Second, Rate: 400, Seed: 62}),
		traffic.NewAttack(traffic.AttackConfig{Kind: traffic.LabelBeacon, Plan: plan,
			Victim: infected, Duration: 10 * time.Second, Rate: 3600, Seed: 63}),
		traffic.NewAttack(traffic.AttackConfig{Kind: traffic.LabelDNSAmp, Plan: plan,
			Victim: plan.Host(5), Start: time.Second, Duration: 3 * time.Second, Rate: 500, Seed: 64}),
	)
	var f traffic.Frame
	for g.Next(&f) {
		st.IngestFrame(&f)
	}
	stats := st.Stats()
	fmt.Printf("data store: %d packets, %d flows over %v\n\n", stats.Packets, stats.Flows, stats.Span.Round(time.Second))

	// 1. Triage with the filter language.
	for _, expr := range []string{
		"dns && dns.qtype == ANY && len > 800",
		"tcp.syn && !tcp.ack && dst.port == 3389",
	} {
		n := st.Count(datastore.MustFilter(expr))
		fmt.Printf("triage %-46q %6d packets\n", expr, n)
	}

	// 2. Retrospective beacon hunt over the retained history.
	fmt.Println("\nbeacon hunt (periodicity over the whole store):")
	for _, finding := range detect.HuntBeacons(st, detect.BeaconConfig{Campus: campus}) {
		fmt.Printf("  %v -> %v  score %.2f  (%s)\n",
			finding.Pair.Host, finding.Pair.Peer, finding.Score, finding.Evidence)
	}

	// 3. Streaming scan detection (what the control plane would run live).
	ds := features.FromSourceWindows(st, features.SourceWindowConfig{Window: time.Second, Campus: campus})
	forest, err := ml.FitForest(ds, int(traffic.NumLabels), ml.ForestConfig{Trees: 20, MaxDepth: 8, Seed: 65})
	if err != nil {
		log.Fatal(err)
	}
	det, err := detect.NewScanDetector(detect.ScanDetectorConfig{
		Model: forest, Window: time.Second, Campus: campus, Threshold: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	st.Scan(func(sp *datastore.StoredPacket) bool {
		det.Observe(sp.TS, &sp.Summary)
		return true
	})
	fmt.Println("\nscan detector convictions:")
	for _, a := range det.Finish() {
		fmt.Printf("  %v at %v (confidence %.2f over %d windows)\n",
			a.Source, a.At.Round(time.Millisecond), a.Confidence, a.Windows)
	}

	// 4. Explain one amplification packet and ask for its counterfactual.
	pkts, err := st.SelectExpr("dns && dns.qtype == ANY && len > 800", 1)
	if err != nil || len(pkts) == 0 {
		log.Fatal("no amplification packet found")
	}
	pktDS := features.FromPackets(st, 1.0).BinaryRelabel(traffic.LabelDNSAmp)
	ampForest, err := ml.FitForest(pktDS, 2, ml.ForestConfig{Trees: 20, MaxDepth: 8, Seed: 66})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := xai.Extract(ampForest, pktDS, xai.ExtractConfig{MaxDepth: 4, Seed: 67})
	if err != nil {
		log.Fatal(err)
	}
	x := make([]float64, len(features.PacketSchema))
	features.PacketVector(&pkts[0].Summary, x)
	ev := xai.Explain(ex.Tree, features.PacketSchema, x)
	fmt.Printf("\nwhy was this packet flagged?\n  %s\n", ev)
	if cf, ok := xai.FindCounterfactual(ex.Tree, features.PacketSchema, x, 0, nil); ok {
		fmt.Printf("what would make it benign?\n  %s\n", cf)
	}

	// 5. Release an aggregate to a cross-campus collaboration under DP.
	budget, err := privacy.NewReleaseBudget(1.0, 68)
	if err != nil {
		log.Fatal(err)
	}
	byClass := map[string]float64{}
	for label, n := range st.LabelCounts() {
		byClass[label.String()] = float64(n)
	}
	released, err := budget.ReleaseHistogram(byClass, 1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDP release of the flow-class histogram (eps=0.5):")
	for k, v := range released {
		fmt.Printf("  %-10s ~%.0f flows\n", k, v)
	}
	fmt.Printf("privacy budget remaining: %.2f\n", budget.Remaining())
}
