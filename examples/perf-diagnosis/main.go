// Performance diagnosis: §3 notes campus networks need to "pinpoint
// performance problems and notify the service or cloud provider(s) in case
// the root cause is not internal". This example injects two different
// faults into the simulated campus — a degraded upstream link and a
// degraded internal distribution link — and shows how the data store's
// latency breakdown localizes each.
package main

import (
	"fmt"
	"log"
	"time"

	"campuslab/internal/netsim"
	"campuslab/internal/packet"
	"campuslab/internal/traffic"
)

// measurement separates delivered-frame latency by whether the path
// crossed the campus border.
type measurement struct {
	extLat, intLat time.Duration
	extN, intN     int
	drops          uint64
}

func (m measurement) extMean() time.Duration {
	if m.extN == 0 {
		return 0
	}
	return m.extLat / time.Duration(m.extN)
}

func (m measurement) intMean() time.Duration {
	if m.intN == 0 {
		return 0
	}
	return m.intLat / time.Duration(m.intN)
}

func run(plan *traffic.AddressPlan, cfg netsim.Config, seed int64) measurement {
	cfg.Plan = plan
	topo := netsim.BuildCampus(cfg)
	net := netsim.NewNetwork(topo)
	var m measurement
	fp := packet.NewFlowParser()
	net.OnDeliver(func(d netsim.Delivery) {
		var s packet.Summary
		if err := fp.Parse(d.Frame.Data, &s); err != nil {
			return
		}
		if plan.Contains(s.Tuple.SrcIP) && plan.Contains(s.Tuple.DstIP) {
			m.intLat += d.Latency()
			m.intN++
		} else {
			m.extLat += d.Latency()
			m.extN++
		}
	})
	gen := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 150, Duration: 2 * time.Second, Seed: seed})
	stats := net.Replay(gen)
	m.drops = stats.QueueDrops
	return m
}

// diagnose applies the operator heuristic: external-path latency inflated
// while internal paths stay healthy points upstream; the reverse points
// inside the campus.
func diagnose(healthy, faulty measurement) string {
	extRatio := float64(faulty.extMean()) / float64(healthy.extMean()+1)
	intRatio := float64(faulty.intMean()) / float64(healthy.intMean()+1)
	switch {
	case extRatio > 2 && intRatio < 1.5:
		return "root cause UPSTREAM — notify the service/cloud provider"
	case intRatio > 2:
		return "root cause INTERNAL — page campus IT"
	default:
		return "inconclusive — collect more data"
	}
}

func main() {
	log.SetFlags(0)
	plan := traffic.DefaultPlan(30)
	base := netsim.Config{HostsPerAccess: 10}

	healthy := run(plan, base, 21)
	fmt.Printf("baseline:        ext %-10v int %-10v drops %d\n",
		healthy.extMean().Round(time.Microsecond), healthy.intMean().Round(time.Microsecond), healthy.drops)

	// Fault 1: the upstream provider's link degrades to 50 Mbps.
	slowUplink := base
	slowUplink.UplinkBW = 50e6
	f1 := run(plan, slowUplink, 21)
	fmt.Printf("fault: uplink    ext %-10v int %-10v drops %d -> %s\n",
		f1.extMean().Round(time.Microsecond), f1.intMean().Round(time.Microsecond), f1.drops,
		diagnose(healthy, f1))

	// Fault 2: an internal distribution layer degrades to 20 Mbps.
	slowDist := base
	slowDist.DistBW = 20e6
	f2 := run(plan, slowDist, 21)
	fmt.Printf("fault: dist      ext %-10v int %-10v drops %d -> %s\n",
		f2.extMean().Round(time.Microsecond), f2.intMean().Round(time.Microsecond), f2.drops,
		diagnose(healthy, f2))
}
