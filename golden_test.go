// Golden determinism test (DESIGN.md §10): the full develop → deploy →
// road-test loop must produce byte-identical outputs regardless of the
// store's shard count or the offline loop's worker fan-out. The
// fingerprint covers the learned models (rules, compiled programs,
// accuracies, probability surfaces), the road-test report, and the
// deltas of the deterministic operational metrics — so a concurrency bug
// that silently drops or double-counts work fails this test even when
// the model happens to come out the same.
package campuslab_test

import (
	"crypto/sha256"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/core"
	"campuslab/internal/features"
	"campuslab/internal/fleet"
	"campuslab/internal/obs"
	"campuslab/internal/roadtest"
	"campuslab/internal/traffic"
)

// goldenSeries whitelists the metric families whose values are fully
// determined by the replayed scenario (virtual-clock event counts).
// Timing families (stage nanos), contention counters, and merge-read
// counts legitimately vary with scheduling and are excluded.
var goldenSeries = map[string]bool{
	"campuslab_store_ingest_packets_total":        true,
	"campuslab_store_ingest_batches_total":        true,
	"campuslab_dataplane_verdicts_total":          true,
	"campuslab_dataplane_filter_hits_total":       true,
	"campuslab_control_escalations_total":         true,
	"campuslab_control_mitigations_total":         true,
	"campuslab_control_install_retries_total":     true,
	"campuslab_control_dropped_mitigations_total": true,
	"campuslab_control_install_failures_total":    true,
	"campuslab_control_infer_failures_total":      true,
	"campuslab_control_fallback_inferences_total": true,
	"campuslab_control_breaker_transitions_total": true,
	obs.StageCallsName:                            true,
}

// metricsSample reads the whitelisted series into key → value.
func metricsSample() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range obs.Default.Snapshot() {
		if !goldenSeries[s.Name] {
			continue
		}
		key := s.Name
		if len(s.Labels) > 0 {
			parts := make([]string, len(s.Labels))
			for i, l := range s.Labels {
				parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
			}
			key += "{" + strings.Join(parts, ",") + "}"
		}
		out[key] = s.Value
	}
	return out
}

// runGolden executes one full loop and returns its fingerprint.
func runGolden(t *testing.T, shards, workers int) string {
	t.Helper()
	before := metricsSample()

	plan := traffic.DefaultPlan(40)
	lab, err := core.NewLab(core.Config{Name: "golden", Plan: plan, Workers: workers, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: 7})
	attack := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(5),
		Start: 600 * time.Millisecond, Duration: 3 * time.Second, Rate: 800, Seed: 8,
	})
	if _, err := lab.Collect(traffic.NewMerge(benign, attack)); err != nil {
		t.Fatal(err)
	}
	dep, err := lab.Develop(core.DevelopConfig{Target: traffic.LabelDNSAmp, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	var fp strings.Builder
	fmt.Fprintf(&fp, "blackbox: trees=%d nodes=%d acc=%.9f\n",
		dep.BlackBox.NumTrees(), dep.BlackBox.TotalNodes(), dep.BlackBoxTestAccuracy)
	fmt.Fprintf(&fp, "deployable: depth=%d nodes=%d fidelity=%.9f train=%.9f test=%.9f\n",
		dep.Extraction.Tree.Depth(), dep.Extraction.Tree.NumNodes(),
		dep.Extraction.Fidelity, dep.TrainAccuracy, dep.TestAccuracy)
	for _, r := range dep.Rules {
		fp.WriteString("rule: " + r + "\n")
	}
	fmt.Fprintf(&fp, "drop: rules=%d tcam=%d\n", len(dep.DropProgram.Rules), dep.DropProgram.TCAMCost())
	for i := range dep.DropProgram.Rules {
		fp.WriteString("drop-rule: " + dep.DropProgram.Rules[i].String() + "\n")
	}
	fmt.Fprintf(&fp, "alert: rules=%d tcam=%d\n", len(dep.AlertProgram.Rules), dep.AlertProgram.TCAMCost())

	// Probability surface: the two models evaluated on a deterministic
	// probe grid. Catches nondeterministic training that tree counts and
	// accuracies round away.
	dim := len(features.PacketSchema)
	x := make([]float64, dim)
	for i := 0; i < 8; i++ {
		for j := range x {
			x[j] = float64((i*31+j*17)%100) / 10
		}
		fmt.Fprintf(&fp, "proba[%d]: bb=%.9v tree=%.9v\n", i, dep.BlackBox.Proba(x), dep.Extraction.Tree.Proba(x))
	}

	heldB := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 3 * time.Second, Seed: 10})
	heldA := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(6),
		Start: 500 * time.Millisecond, Duration: 2 * time.Second, Rate: 800, Seed: 11,
	})
	rep, err := lab.RoadTest(dep, control.TierControlPlane, traffic.NewMerge(heldB, heldA),
		roadtest.Spec{MinRecall: 0.5, MaxCollateral: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	fp.WriteString("roadtest: " + rep.Summary() + "\n")

	// Operational metric deltas for this run. The registry is process
	//-global, so diff against the sample taken before the run.
	after := metricsSample()
	keys := make([]string, 0, len(after))
	for k := range after {
		keys = append(keys, k)
	}
	// Sorted for a stable fingerprint (Snapshot is sorted, but the map
	// round-trip loses order).
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		fmt.Fprintf(&fp, "metric: %s +%g\n", k, after[k]-before[k])
	}
	return fp.String()
}

func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full develop loop; skipped in -short")
	}
	serial := runGolden(t, 1, 1)
	parallel := runGolden(t, 4, 4)
	if serial != parallel {
		t.Errorf("(shards=1,workers=1) and (shards=4,workers=4) fingerprints diverge:\n--- serial ---\n%s\n--- parallel ---\n%s\ndiff at: %s",
			serial, parallel, firstDiff(serial, parallel))
	}
	if !strings.Contains(serial, "roadtest: ") || !strings.Contains(serial, "metric: ") {
		t.Fatalf("fingerprint incomplete:\n%s", serial)
	}
}

// fleetFingerprint runs one federated development round over three small
// campus scenarios and flattens everything it produced — the full
// train-here/test-there recall and accuracy matrices, the federated and
// pooled rows, the serialized merged ensemble, and the coordinator's
// transition log — into one comparable string. Values are printed at
// shortest-exact precision so a single differing bit anywhere fails.
func fleetFingerprint(t *testing.T, tcp bool, shards, workers int) string {
	t.Helper()
	specs := []core.CampusSpec{
		{Name: "ucsb", HostsPerDept: 15, FlowsPerSecond: 30, AttackRate: 400, StartHour: 14, Seed: 901},
		{Name: "princeton", HostsPerDept: 20, FlowsPerSecond: 40, AttackRate: 250, StartHour: 17, Seed: 902},
		{Name: "columbia", HostsPerDept: 12, FlowsPerSecond: 25, AttackRate: 500, StartHour: 17, Seed: 903},
	}
	campuses := make([]fleet.Campus, len(specs))
	for i, spec := range specs {
		spec.Shards, spec.Workers = shards, workers
		lab, gen, err := core.BuildCampusScenario(spec, traffic.LabelPortScan)
		if err != nil {
			t.Fatal(err)
		}
		if tcp {
			srv, err := fleet.NewServer(fleet.ServerConfig{Store: lab.Store(), Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
			cl, err := fleet.DialCampus(fleet.ClientConfig{Addr: ln.Addr().String(), Campus: spec.Name})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Stream(gen, 0); err != nil {
				t.Fatal(err)
			}
			cl.Close()
			ln.Close()
			srv.Close()
		} else if _, err := lab.Collect(gen); err != nil {
			t.Fatal(err)
		}
		campuses[i] = fleet.Campus{Name: spec.Name, Store: lab.Store()}
	}

	res, err := fleet.RunFederated(campuses, fleet.CoordinatorConfig{
		Target: traffic.LabelPortScan, ForestTrees: 6, ForestDepth: 6, Seed: 904, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fp strings.Builder
	for i := range res.Campuses {
		for j := range res.Campuses {
			fmt.Fprintf(&fp, "roadtest %s->%s: recall=%v accuracy=%v\n",
				res.Campuses[i], res.Campuses[j], res.Recall[i][j], res.Accuracy[i][j])
		}
	}
	for j := range res.Campuses {
		fmt.Fprintf(&fp, "federated @%s: recall=%v accuracy=%v pooled recall=%v accuracy=%v\n",
			res.Campuses[j], res.FederatedRecall[j], res.FederatedAccuracy[j],
			res.PooledRecall[j], res.PooledAccuracy[j])
	}
	fmt.Fprintf(&fp, "merged: trees=%d bytes=%d sha256=%x\n",
		res.Merged.NumTrees(), len(res.MergedBytes), sha256.Sum256(res.MergedBytes))
	for _, line := range res.Log {
		fp.WriteString("log: " + line + "\n")
	}
	return fp.String()
}

// TestGoldenFleetDeterminism pins the tentpole's core claim: a federated
// round's entire output is byte-identical whether the fleet is one
// process ingesting locally or three campuses streaming over loopback
// TCP, and whatever the store shard count or worker fan-out. 8 configs,
// 1 fingerprint.
func TestGoldenFleetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("8 federated rounds; skipped in -short")
	}
	var ref, refName string
	for _, tcp := range []bool{false, true} {
		for _, shards := range []int{1, 4} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("tcp=%v,shards=%d,workers=%d", tcp, shards, workers)
				fp := fleetFingerprint(t, tcp, shards, workers)
				if ref == "" {
					ref, refName = fp, name
					continue
				}
				if fp != ref {
					t.Errorf("fleet fingerprint (%s) diverges from (%s)\ndiff at: %s",
						name, refName, firstDiff(ref, fp))
				}
			}
		}
	}
	if !strings.Contains(ref, "log: round complete") || !strings.Contains(ref, "merged: trees=18") {
		t.Fatalf("fleet fingerprint incomplete:\n%s", ref)
	}
}

// firstDiff locates the first line where two fingerprints diverge.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(al), len(bl))
}
