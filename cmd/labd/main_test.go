package main

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/datastore"
)

var (
	testSrvOnce sync.Once
	testSrv     *server
	testSrvAddr string
	testSrvErr  error
)

// sharedServer builds the one shared labd server (training the model is
// expensive) and its listener. It takes testing.TB so fuzz targets can
// reuse the same instance.
func sharedServer(t testing.TB) *server {
	t.Helper()
	testSrvOnce.Do(func() {
		srv, err := newServer(daemonConfig{Seed: 3})
		if err != nil {
			testSrvErr = err
			return
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			testSrvErr = err
			return
		}
		testSrv = srv
		testSrvAddr = ln.Addr().String()
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go srv.handle(conn)
			}
		}()
	})
	if testSrvErr != nil {
		t.Fatal(testSrvErr)
	}
	return testSrv
}

// startTestServer returns a fresh client connection to the shared server.
func startTestServer(t *testing.T) net.Conn {
	t.Helper()
	sharedServer(t)
	conn, err := net.DialTimeout("tcp", testSrvAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// deriveServer clones the shared server's expensive state (lab, model)
// into an independent server so hardening tests can vary idle timeout,
// connection cap, and handlers without disturbing other tests.
func deriveServer(t *testing.T) *server {
	base := sharedServer(t)
	handlers := make(map[string]handler, len(base.handlers))
	for k, v := range base.handlers {
		handlers[k] = v
	}
	return &server{
		lab: base.lab, dep: base.dep, handlers: handlers,
		idle: base.idle, conns: make(map[net.Conn]struct{}),
	}
}

// listenWith serves srv on its own listener and returns the address.
func listenWith(t *testing.T, srv *server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.handle(conn)
		}
	}()
	return ln.Addr().String()
}

// dialSession connects to addr and consumes the banner.
func dialSession(t *testing.T, addr string) *protoSession {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	s := &protoSession{conn: conn, r: bufio.NewReader(conn)}
	banner, err := s.r.ReadString('\n')
	if err != nil || !strings.Contains(banner, "labd ready") {
		t.Fatalf("banner = %q, err = %v", banner, err)
	}
	return s
}

// protoSession drives one request/response exchange.
type protoSession struct {
	conn net.Conn
	r    *bufio.Reader
}

func newSession(t *testing.T) *protoSession {
	t.Helper()
	conn := startTestServer(t)
	s := &protoSession{conn: conn, r: bufio.NewReader(conn)}
	banner, err := s.r.ReadString('\n')
	if err != nil || !strings.Contains(banner, "labd ready") {
		t.Fatalf("banner = %q, err = %v", banner, err)
	}
	return s
}

func (s *protoSession) send(t *testing.T, cmd string) string {
	t.Helper()
	if _, err := s.conn.Write([]byte(cmd + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err := s.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func (s *protoSession) readLines(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		line, err := s.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, strings.TrimSpace(line))
	}
	return out
}

func TestLabdStats(t *testing.T) {
	s := newSession(t)
	resp := s.send(t, "STATS")
	if !strings.Contains(resp, "packets=") || !strings.Contains(resp, "flows=") {
		t.Errorf("STATS = %q", resp)
	}
	if strings.Contains(resp, "packets=0 ") {
		t.Error("server booted with empty store")
	}
}

func TestLabdQuery(t *testing.T) {
	s := newSession(t)
	resp := s.send(t, "QUERY dns && dns.qtype == ANY")
	if !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("QUERY = %q", resp)
	}
	var n int
	if _, err := sscanInt(resp[3:], &n); err != nil {
		t.Fatalf("bad count in %q", resp)
	}
	if n == 0 {
		t.Fatal("no ANY-query packets in the scenario")
	}
	lines := s.readLines(t, n)
	for _, l := range lines {
		if !strings.Contains(l, ">") {
			t.Errorf("result line %q lacks a tuple", l)
		}
	}
}

func TestLabdQueryErrors(t *testing.T) {
	s := newSession(t)
	if resp := s.send(t, "QUERY"); !strings.HasPrefix(resp, "ERR") {
		t.Errorf("bare QUERY = %q", resp)
	}
	if resp := s.send(t, "QUERY bogusfield == 1"); !strings.HasPrefix(resp, "ERR") {
		t.Errorf("bad expression = %q", resp)
	}
	if resp := s.send(t, "FROBNICATE"); !strings.HasPrefix(resp, "ERR") {
		t.Errorf("unknown command = %q", resp)
	}
}

func TestLabdRulesAndLabels(t *testing.T) {
	s := newSession(t)
	resp := s.send(t, "RULES")
	if !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("RULES = %q", resp)
	}
	var n int
	if _, err := sscanInt(resp[3:], &n); err != nil || n == 0 {
		t.Fatalf("rule count in %q", resp)
	}
	rules := s.readLines(t, n)
	for _, r := range rules {
		if !strings.HasPrefix(r, "IF ") {
			t.Errorf("rule %q", r)
		}
	}
	labels := s.send(t, "LABELS")
	if !strings.HasPrefix(labels, "benign=") && !strings.HasPrefix(labels, "dns-amp=") {
		t.Errorf("LABELS first line = %q", labels)
	}
}

func TestLabdQuit(t *testing.T) {
	s := newSession(t)
	if resp := s.send(t, "QUIT"); resp != "bye" {
		t.Errorf("QUIT = %q", resp)
	}
	// Connection should be closed by the server.
	s.conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := s.r.ReadString('\n'); err == nil {
		t.Error("connection still open after QUIT")
	}
}

func TestLabdConcurrentClients(t *testing.T) {
	// Two sessions against the same server must not interfere.
	a := newSession(t)
	b := newSession(t)
	ra := a.send(t, "STATS")
	rb := b.send(t, "STATS")
	if ra != rb {
		t.Errorf("stats diverge across clients: %q vs %q", ra, rb)
	}
}

// sscanInt parses a leading integer.
func sscanInt(s string, out *int) (int, error) {
	return fmt.Sscan(s, out)
}

func TestLabdConnCap(t *testing.T) {
	srv := deriveServer(t)
	srv.sem = make(chan struct{}, 1)
	addr := listenWith(t, srv)

	first := dialSession(t, addr) // holds the only slot
	over, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	over.SetReadDeadline(time.Now().Add(3 * time.Second))
	line, err := bufio.NewReader(over).ReadString('\n')
	if err != nil {
		t.Fatalf("over-cap connection: %v", err)
	}
	if !strings.HasPrefix(line, "ERR busy") {
		t.Fatalf("over-cap connection got %q, want ERR busy", line)
	}
	// The admitted connection is unaffected.
	if resp := first.send(t, "STATS"); !strings.Contains(resp, "packets=") {
		t.Errorf("STATS on admitted conn = %q", resp)
	}
	// Releasing the slot lets the next dialer in.
	first.send(t, "QUIT")
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		line, err := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if err == nil && strings.Contains(line, "labd ready") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after QUIT; last banner %q err %v", line, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestLabdPanicRecovery(t *testing.T) {
	srv := deriveServer(t)
	srv.handlers["BOOM"] = func(*server, *bufio.Writer, string) { panic("injected handler bug") }
	addr := listenWith(t, srv)
	s := dialSession(t, addr)
	if resp := s.send(t, "BOOM"); resp != "ERR internal error" {
		t.Fatalf("panicking handler returned %q", resp)
	}
	// The connection and the daemon both survive.
	if resp := s.send(t, "STATS"); !strings.Contains(resp, "packets=") {
		t.Errorf("STATS after panic = %q", resp)
	}
	s2 := dialSession(t, addr)
	if resp := s2.send(t, "STATS"); !strings.Contains(resp, "packets=") {
		t.Errorf("new conn after panic = %q", resp)
	}
}

func TestLabdIdleTimeout(t *testing.T) {
	srv := deriveServer(t)
	srv.idle = 150 * time.Millisecond
	addr := listenWith(t, srv)
	s := dialSession(t, addr)
	// Stay silent past the idle window: the server must close us.
	s.conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := s.r.ReadString('\n'); err == nil {
		t.Fatal("idle connection not closed by server")
	}
	// The deadline refreshes per command: a chatty connection outlives
	// many idle windows.
	s2 := dialSession(t, addr)
	for i := 0; i < 3; i++ {
		time.Sleep(100 * time.Millisecond)
		if resp := s2.send(t, "STATS"); !strings.Contains(resp, "packets=") {
			t.Fatalf("command %d on chatty conn = %q", i, resp)
		}
	}
}

func TestLabdGracefulDrain(t *testing.T) {
	srv := deriveServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		serve(ctx, ln, srv, 5*time.Second)
		close(served)
	}()

	s := dialSession(t, addr)
	cancel() // SIGTERM equivalent: stop accepting, drain in-flight

	// New connections are refused once the listener is down.
	refusedBy := time.Now().Add(3 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(refusedBy) {
			t.Fatal("listener still accepting after shutdown")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The in-flight connection finishes its work during the grace period.
	if resp := s.send(t, "STATS"); !strings.Contains(resp, "packets=") {
		t.Errorf("in-flight conn broken during drain: %q", resp)
	}
	s.send(t, "QUIT")
	select {
	case <-served:
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after connections drained")
	}
}

func TestLabdDrainForceCloseStragglers(t *testing.T) {
	srv := deriveServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		serve(ctx, ln, srv, 300*time.Millisecond)
		close(served)
	}()
	s := dialSession(t, addr) // never quits: a straggler
	cancel()
	select {
	case <-served:
	case <-time.After(10 * time.Second):
		t.Fatal("serve hung on a straggler past the grace period")
	}
	// The straggler was force-closed.
	s.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := s.r.ReadString('\n'); err == nil {
		t.Error("straggler connection still open after forced drain")
	}
}

func TestLabdMetricsCommand(t *testing.T) {
	s := newSession(t)
	// Run a QUERY first so its command counter is provably visible in the
	// snapshot that follows.
	resp := s.send(t, "QUERY dns")
	if !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("QUERY = %q", resp)
	}
	var qn int
	if _, err := sscanInt(resp[3:], &qn); err != nil {
		t.Fatalf("bad count in %q", resp)
	}
	s.readLines(t, qn)

	resp = s.send(t, "METRICS")
	if !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("METRICS = %q", resp)
	}
	var n int
	if _, err := sscanInt(resp[3:], &n); err != nil || n == 0 {
		t.Fatalf("metrics line count in %q", resp)
	}
	body := strings.Join(s.readLines(t, n), "\n")

	// The snapshot must cover every layer: datastore ingest, dataplane
	// verdicts, control-loop resilience, and the daemon's own counters.
	for _, want := range []string{
		"campuslab_store_ingest_packets_total",
		"campuslab_store_ingest_batches_total",
		`campuslab_dataplane_verdicts_total{action="permit"}`,
		"campuslab_control_install_retries_total",
		`campuslab_control_breaker_transitions_total{to="open"}`,
		"campuslab_labd_connections_total",
		"# TYPE campuslab_store_ingest_batch_size histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("METRICS snapshot missing %q", want)
		}
	}
	// The QUERY we just ran must be counted.
	found := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `campuslab_labd_commands_total{cmd="QUERY"} `) {
			var v float64
			if _, err := fmt.Sscan(line[strings.LastIndex(line, " ")+1:], &v); err != nil {
				t.Fatalf("unparseable series %q", line)
			}
			if v < 1 {
				t.Errorf("QUERY command counter = %v, want >= 1", v)
			}
			found = true
		}
	}
	if !found {
		t.Error("no campuslab_labd_commands_total{cmd=\"QUERY\"} series in snapshot")
	}
}

func TestLabdMetricsShowDeployedTraffic(t *testing.T) {
	// newServer road-tests the deployment before serving, so the very
	// first scrape must already show packets flowing and verdicts issued.
	sharedServer(t)
	s := newSession(t)
	resp := s.send(t, "METRICS")
	var n int
	if _, err := sscanInt(resp[3:], &n); err != nil {
		t.Fatalf("METRICS = %q", resp)
	}
	body := strings.Join(s.readLines(t, n), "\n")
	for _, series := range []string{
		"campuslab_store_ingest_packets_total ",
		`campuslab_dataplane_verdicts_total{action="permit"} `,
		"campuslab_control_loops_total ",
	} {
		v, ok := seriesValue(body, series)
		if !ok {
			t.Errorf("series %q absent", series)
			continue
		}
		if v <= 0 {
			t.Errorf("series %q = %v, want > 0 after warmup replay", series, v)
		}
	}
}

// seriesValue extracts the value of the first line starting with prefix.
func seriesValue(body, prefix string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			var v float64
			if _, err := fmt.Sscan(line[strings.LastIndex(line, " ")+1:], &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// TestLabdDurableLifecycle boots a durable daemon, checks /healthz-level
// health, drains it, and re-boots from the same directory: the second
// boot must recover the first boot's store instead of re-collecting.
func TestLabdDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv, err := newServer(daemonConfig{Seed: 3, DataDir: dir, Fsync: datastore.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.health()
	if h.Status != "ok" || !h.Durable || !h.WAL.Attached {
		t.Fatalf("health = %+v", h)
	}
	if h.Lifecycle != "healthy" {
		t.Fatalf("lifecycle = %q", h.Lifecycle)
	}
	if _, ok := control.LoadLKG(dir); !ok {
		t.Fatal("no last-known-good bundle persisted in the data dir")
	}
	packets := srv.lab.Store().Stats().Packets
	if packets == 0 {
		t.Fatal("fresh durable boot collected nothing")
	}
	if err := srv.drainDurable(); err != nil {
		t.Fatal(err)
	}

	srv2, err := newServer(daemonConfig{Seed: 99, DataDir: dir, Fsync: datastore.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.drainDurable()
	// Seed 99 would synthesize a different scenario; identical packet
	// counts prove the second boot recovered rather than re-collected.
	if got := srv2.lab.Store().Stats().Packets; got != packets {
		t.Fatalf("recovered %d packets, first boot had %d", got, packets)
	}
	h2 := srv2.health()
	if h2.WAL.Records != 0 {
		t.Fatalf("clean recovery reports WAL lag: %+v", h2.WAL)
	}
}

// TestLabdTieredLifecycle boots a tiered durable daemon with a hot cap far
// below the boot scenario, so the collect itself spills history into cold
// segments; health, STATS and a reboot must all see the cold tier.
func TestLabdTieredLifecycle(t *testing.T) {
	dir := t.TempDir()
	dc := daemonConfig{
		Seed: 3, DataDir: dir, Fsync: datastore.FsyncAlways,
		Tier: datastore.TierPolicy{Dir: filepath.Join(dir, "tier"), HotPackets: 2000},
	}
	srv, err := newServer(dc)
	if err != nil {
		t.Fatal(err)
	}
	h := srv.health()
	if !h.Tier.Enabled || h.Tier.Segments == 0 || h.Tier.ColdPackets == 0 {
		t.Fatalf("boot scenario did not spill to cold tier: %+v", h.Tier)
	}
	if h.Status != "ok" || h.Tier.Error != "" {
		t.Fatalf("health = %+v", h)
	}
	var sb strings.Builder
	w := bufio.NewWriter(&sb)
	srv.cmdStats(w, "")
	w.Flush()
	if !strings.Contains(sb.String(), "cold_packets=") || !strings.Contains(sb.String(), "segments=") {
		t.Fatalf("STATS hides the cold tier: %q", sb.String())
	}
	total := srv.lab.Store().Stats().Packets + srv.lab.Store().Stats().ColdPackets
	if err := srv.drainDurable(); err != nil {
		t.Fatal(err)
	}

	srv2, err := newServer(dc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.drainDurable()
	st2 := srv2.lab.Store().Stats()
	if got := st2.Packets + st2.ColdPackets; got != total {
		t.Fatalf("tiered reboot holds %d packets, first boot had %d", got, total)
	}
	if st2.ColdPackets == 0 {
		t.Fatal("reboot lost the cold tier")
	}
}
