package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	testSrvOnce sync.Once
	testSrvAddr string
	testSrvErr  error
)

// startTestServer brings up one shared labd server (training the model is
// expensive) and returns a fresh client connection.
func startTestServer(t *testing.T) net.Conn {
	t.Helper()
	testSrvOnce.Do(func() {
		srv, err := newServer(3)
		if err != nil {
			testSrvErr = err
			return
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			testSrvErr = err
			return
		}
		testSrvAddr = ln.Addr().String()
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go srv.handle(conn)
			}
		}()
	})
	if testSrvErr != nil {
		t.Fatal(testSrvErr)
	}
	conn, err := net.DialTimeout("tcp", testSrvAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// protoSession drives one request/response exchange.
type protoSession struct {
	conn net.Conn
	r    *bufio.Reader
}

func newSession(t *testing.T) *protoSession {
	t.Helper()
	conn := startTestServer(t)
	s := &protoSession{conn: conn, r: bufio.NewReader(conn)}
	banner, err := s.r.ReadString('\n')
	if err != nil || !strings.Contains(banner, "labd ready") {
		t.Fatalf("banner = %q, err = %v", banner, err)
	}
	return s
}

func (s *protoSession) send(t *testing.T, cmd string) string {
	t.Helper()
	if _, err := s.conn.Write([]byte(cmd + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err := s.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func (s *protoSession) readLines(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		line, err := s.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, strings.TrimSpace(line))
	}
	return out
}

func TestLabdStats(t *testing.T) {
	s := newSession(t)
	resp := s.send(t, "STATS")
	if !strings.Contains(resp, "packets=") || !strings.Contains(resp, "flows=") {
		t.Errorf("STATS = %q", resp)
	}
	if strings.Contains(resp, "packets=0 ") {
		t.Error("server booted with empty store")
	}
}

func TestLabdQuery(t *testing.T) {
	s := newSession(t)
	resp := s.send(t, "QUERY dns && dns.qtype == ANY")
	if !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("QUERY = %q", resp)
	}
	var n int
	if _, err := sscanInt(resp[3:], &n); err != nil {
		t.Fatalf("bad count in %q", resp)
	}
	if n == 0 {
		t.Fatal("no ANY-query packets in the scenario")
	}
	lines := s.readLines(t, n)
	for _, l := range lines {
		if !strings.Contains(l, ">") {
			t.Errorf("result line %q lacks a tuple", l)
		}
	}
}

func TestLabdQueryErrors(t *testing.T) {
	s := newSession(t)
	if resp := s.send(t, "QUERY"); !strings.HasPrefix(resp, "ERR") {
		t.Errorf("bare QUERY = %q", resp)
	}
	if resp := s.send(t, "QUERY bogusfield == 1"); !strings.HasPrefix(resp, "ERR") {
		t.Errorf("bad expression = %q", resp)
	}
	if resp := s.send(t, "FROBNICATE"); !strings.HasPrefix(resp, "ERR") {
		t.Errorf("unknown command = %q", resp)
	}
}

func TestLabdRulesAndLabels(t *testing.T) {
	s := newSession(t)
	resp := s.send(t, "RULES")
	if !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("RULES = %q", resp)
	}
	var n int
	if _, err := sscanInt(resp[3:], &n); err != nil || n == 0 {
		t.Fatalf("rule count in %q", resp)
	}
	rules := s.readLines(t, n)
	for _, r := range rules {
		if !strings.HasPrefix(r, "IF ") {
			t.Errorf("rule %q", r)
		}
	}
	labels := s.send(t, "LABELS")
	if !strings.HasPrefix(labels, "benign=") && !strings.HasPrefix(labels, "dns-amp=") {
		t.Errorf("LABELS first line = %q", labels)
	}
}

func TestLabdQuit(t *testing.T) {
	s := newSession(t)
	if resp := s.send(t, "QUIT"); resp != "bye" {
		t.Errorf("QUIT = %q", resp)
	}
	// Connection should be closed by the server.
	s.conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := s.r.ReadString('\n'); err == nil {
		t.Error("connection still open after QUIT")
	}
}

func TestLabdConcurrentClients(t *testing.T) {
	// Two sessions against the same server must not interfere.
	a := newSession(t)
	b := newSession(t)
	ra := a.send(t, "STATS")
	rb := b.send(t, "STATS")
	if ra != rb {
		t.Errorf("stats diverge across clients: %q vs %q", ra, rb)
	}
}

// sscanInt parses a leading integer.
func sscanInt(s string, out *int) (int, error) {
	return fmt.Sscan(s, out)
}
