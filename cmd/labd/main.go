// Command labd runs a campus lab as a long-lived daemon: it collects a
// rolling synthetic scenario into the data store, develops a deployable
// model, and serves a line-oriented TCP protocol for operators and tools:
//
//	STATS                  store and switch statistics
//	QUERY <expr>           filter-language query (first 10 matches)
//	RULES                  the deployed model's operator rules
//	EXPLAIN <idx>          evidence for a recent escalated packet
//	LABELS                 ground-truth class counts
//	QUIT                   close the connection
//
// Usage: labd -listen 127.0.0.1:7077 [-seed 3]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"campuslab/internal/core"
	"campuslab/internal/traffic"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("labd: ")
	var (
		listen = flag.String("listen", "127.0.0.1:7077", "TCP listen address")
		seed   = flag.Int64("seed", 3, "scenario seed")
	)
	flag.Parse()

	srv, err := newServer(*seed)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (store: %d packets, model: %d rules)",
		ln.Addr(), srv.lab.Store().Stats().Packets, len(srv.dep.Rules))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				log.Print("shutting down")
				return
			}
			log.Printf("accept: %v", err)
			continue
		}
		go srv.handle(conn)
	}
}

// server holds the lab state shared across connections. The store and
// deployment are built once at startup; queries are read-only.
type server struct {
	lab *core.Lab
	dep *core.Deployment
}

func newServer(seed int64) (*server, error) {
	plan := traffic.DefaultPlan(40)
	lab, err := core.NewLab(core.Config{Name: "labd", Plan: plan})
	if err != nil {
		return nil, err
	}
	benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: seed})
	amp := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(5),
		Start: 600 * time.Millisecond, Duration: 3 * time.Second, Rate: 800, Seed: seed + 1,
	})
	if _, err := lab.Collect(traffic.NewMerge(benign, amp)); err != nil {
		return nil, err
	}
	dep, err := lab.Develop(core.DevelopConfig{Target: traffic.LabelDNSAmp, Seed: seed + 2})
	if err != nil {
		return nil, err
	}
	return &server{lab: lab, dep: dep}, nil
}

func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Minute))
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	fmt.Fprintln(w, "campuslab labd ready; commands: STATS QUERY RULES LABELS QUIT")
	w.Flush()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "QUIT":
			fmt.Fprintln(w, "bye")
			w.Flush()
			return
		case "STATS":
			st := s.lab.Store().Stats()
			fmt.Fprintf(w, "packets=%d flows=%d events=%d data_bytes=%d index_bytes=%d span=%v\n",
				st.Packets, st.Flows, st.Events, st.DataBytes, st.IndexBytes, st.Span.Round(time.Millisecond))
		case "QUERY":
			if rest == "" {
				fmt.Fprintln(w, "ERR QUERY needs an expression")
				break
			}
			matches, err := s.lab.Store().SelectExpr(rest, 10)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			fmt.Fprintf(w, "OK %d\n", len(matches))
			for i := range matches {
				fmt.Fprintf(w, "%v %v %dB\n", matches[i].TS.Round(time.Microsecond),
					matches[i].Summary.Tuple, matches[i].Summary.WireLen)
			}
		case "RULES":
			fmt.Fprintf(w, "OK %d\n", len(s.dep.Rules))
			for _, r := range s.dep.Rules {
				fmt.Fprintln(w, r)
			}
		case "LABELS":
			counts := s.lab.Store().LabelCounts()
			for l := traffic.LabelBenign; l < traffic.NumLabels; l++ {
				if counts[l] > 0 {
					fmt.Fprintf(w, "%s=%d\n", l, counts[l])
				}
			}
		case "":
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}
