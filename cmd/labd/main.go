// Command labd runs a campus lab as a long-lived daemon: it collects a
// rolling synthetic scenario into the data store, develops a deployable
// model, and serves a line-oriented TCP protocol for operators and tools:
//
//	STATS                  store and switch statistics
//	QUERY <expr>           filter-language query (first 10 matches)
//	RULES                  the deployed model's operator rules
//	LABELS                 ground-truth class counts
//	METRICS                process metrics snapshot (Prometheus text)
//	QUIT                   close the connection
//
// The daemon is hardened for unattended operation: concurrent connections
// are capped (excess dialers get "ERR busy" instead of an unbounded
// goroutine pile), each connection must issue a command within an idle
// window or it is closed, a panicking command handler costs one "ERR
// internal error" line rather than the process, and SIGTERM drains
// in-flight connections for a bounded grace period before forcing them
// closed.
//
// With -http the daemon additionally serves an HTTP diagnostics
// endpoint: /metrics (Prometheus text format), /debug/pprof/* and a
// /debug/trace JSON dump of recent slow-loop spans.
//
// With -ingest-listen the daemon is a fleet node: remote campuses stream
// labeled packet batches into its store over the binary ingest protocol
// (see internal/fleet), riding the same admission and WAL path as local
// collection.
//
// Usage: labd -listen 127.0.0.1:7077 [-seed 3] [-max-conns 64] [-drain 10s] [-http 127.0.0.1:7078] [-ingest-listen 127.0.0.1:7079]
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/core"
	"campuslab/internal/dataplane"
	"campuslab/internal/datastore"
	"campuslab/internal/features"
	"campuslab/internal/fleet"
	"campuslab/internal/ml"
	"campuslab/internal/obs"
	"campuslab/internal/traffic"
)

// Daemon-level metrics. Per-command counters carry the command label and
// are pre-registered per handler in newServer; unknown commands share one
// unlabeled counter so hostile input cannot mint unbounded series.
var (
	obsConns       = obs.Default.Counter("campuslab_labd_connections_total")
	obsBusyRejects = obs.Default.Counter("campuslab_labd_busy_rejects_total")
	obsUnknownCmds = obs.Default.Counter("campuslab_labd_unknown_commands_total")
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("labd: ")
	var (
		listen    = flag.String("listen", "127.0.0.1:7077", "TCP listen address")
		seed      = flag.Int64("seed", 3, "scenario seed")
		maxConns  = flag.Int("max-conns", 64, "max concurrent client connections (0 = unlimited)")
		drain     = flag.Duration("drain", 10*time.Second, "grace period for in-flight connections on shutdown")
		httpAddr  = flag.String("http", "", "HTTP diagnostics listen address (/metrics, /healthz, /debug/pprof, /debug/trace); empty = disabled")
		dataDir   = flag.String("data", "", "durable data directory (snapshot + write-ahead log); empty = in-memory only")
		fsyncStr  = flag.String("fsync", "interval", "WAL durability policy: always | interval | none (with -data)")
		tierDir   = flag.String("tier-dir", "", "cold-tier segment directory; empty = hot tier only")
		tierHot   = flag.Uint64("tier-hot", 500_000, "hot-tier packet cap before history seals to cold segments (with -tier-dir)")
		tierComp  = flag.Duration("tier-compact", time.Minute, "cold-tier compaction sweep interval, 0 = disabled (with -tier-dir)")
		tierCache = flag.Int64("tier-cache", 0, "decoded-block cache budget in bytes for cold-tier queries, 0 = disabled (with -tier-dir)")
		ingestLn  = flag.String("ingest-listen", "", "binary fleet-ingest listen address (remote campuses stream batches here); empty = disabled")
	)
	flag.Parse()

	fsync, err := datastore.ParseFsyncPolicy(*fsyncStr)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := newServer(daemonConfig{
		Seed: *seed, DataDir: *dataDir, Fsync: fsync,
		Tier: datastore.TierPolicy{Dir: *tierDir, HotPackets: *tierHot, CacheBytes: *tierCache},
	})
	if err != nil {
		log.Fatal(err)
	}
	if *tierDir != "" && *tierComp > 0 {
		stop := srv.lab.Store().StartTierCompactor(*tierComp)
		defer stop()
	}
	if *maxConns > 0 {
		srv.sem = make(chan struct{}, *maxConns)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (store: %d packets, model: %d rules)",
		ln.Addr(), srv.lab.Store().Stats().Packets, len(srv.dep.Rules))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *ingestLn != "" {
		fsrv, err := fleet.NewServer(fleet.ServerConfig{Store: srv.lab.Store()})
		if err != nil {
			log.Fatal(err)
		}
		fln, err := net.Listen("tcp", *ingestLn)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("fleet ingest on %s", fln.Addr())
		go func() {
			<-ctx.Done()
			fln.Close()
			fsrv.Close()
		}()
		go func() {
			if err := fsrv.Serve(fln); err != nil {
				log.Printf("fleet ingest: %v", err)
			}
		}()
	}
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		registerStoreGauges(srv.lab)
		log.Printf("http diagnostics on http://%s/metrics", hln.Addr())
		go serveHTTP(ctx, hln, srv)
	}
	serve(ctx, ln, srv, *drain)
	if err := srv.drainDurable(); err != nil {
		log.Printf("final checkpoint: %v", err)
	}
}

// drainDurable is the durability half of SIGTERM shutdown: flush unsynced
// WAL appends, write a final snapshot covering everything acknowledged,
// and detach the log. A daemon killed mid-drain still loses nothing — the
// flushed WAL replays on the next boot; the checkpoint just makes that
// replay empty.
func (s *server) drainDurable() error {
	if s.dataDir == "" {
		return nil
	}
	st := s.lab.Store()
	if err := st.FlushWAL(); err != nil {
		return fmt.Errorf("wal flush: %w", err)
	}
	if err := st.CheckpointDir(s.dataDir); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := st.CloseWAL(); err != nil {
		return fmt.Errorf("wal close: %w", err)
	}
	log.Printf("final snapshot written to %s", s.dataDir)
	return nil
}

// serve accepts connections until ctx is cancelled, then drains: no new
// connections, in-flight ones get the grace period to finish, stragglers
// are force-closed.
func serve(ctx context.Context, ln net.Listener, srv *server, grace time.Duration) {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			log.Printf("accept: %v", err)
			continue
		}
		srv.wg.Add(1)
		go func() {
			defer srv.wg.Done()
			srv.handle(conn)
		}()
	}
	log.Print("shutting down; draining connections")
	done := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		n := srv.closeAll()
		log.Printf("drain timeout; force-closed %d connections", n)
		<-done
	}
	log.Print("shutdown complete")
}

// handler serves one protocol command; rest is the argument tail.
type handler func(s *server, w *bufio.Writer, rest string)

// server holds the lab state shared across connections. The store and
// deployment are built once at startup; queries are read-only.
type server struct {
	lab *core.Lab
	dep *core.Deployment
	// dataDir is the durable directory ("" = in-memory only).
	dataDir string
	// lifecycle is the model state machine /healthz reports.
	lifecycle *control.Lifecycle
	handlers  map[string]handler
	// idle is the per-command read deadline: a connection that stays
	// silent this long is closed.
	idle time.Duration
	// sem caps concurrent connections (nil = unlimited).
	sem chan struct{}
	// cmdCounters are the pre-registered per-command metrics.
	cmdCounters map[string]*obs.Counter

	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// daemonConfig parameterizes daemon construction.
type daemonConfig struct {
	Seed int64
	// DataDir enables durable operation: the store is recovered from its
	// snapshot + WAL and every acked batch is logged ("" = in-memory).
	DataDir string
	Fsync   datastore.FsyncPolicy
	// Tier enables the cold tier: history past Tier.HotPackets seals into
	// compressed columnar segments under Tier.Dir (empty Dir = hot only).
	Tier datastore.TierPolicy
}

func newServer(dc daemonConfig) (*server, error) {
	seed := dc.Seed
	plan := traffic.DefaultPlan(40)
	var st *datastore.Store
	var recovered bool
	if dc.DataDir != "" {
		var rs datastore.RecoveryStats
		var err error
		st, rs, err = datastore.Recover(datastore.DurableConfig{Dir: dc.DataDir, Fsync: dc.Fsync, Tier: dc.Tier})
		if err != nil {
			return nil, err
		}
		recovered = rs.SnapshotPackets+rs.WALPackets > 0
		if recovered {
			log.Printf("recovered %s: %d snapshot + %d replayed packets (torn=%v)",
				dc.DataDir, rs.SnapshotPackets, rs.WALPackets, rs.Torn)
		}
	} else if dc.Tier.Dir != "" {
		st = datastore.NewSharded(0)
		if err := st.EnableTiering(dc.Tier); err != nil {
			return nil, err
		}
	}
	if dc.Tier.Dir != "" {
		if ts := st.TierStats(); ts.Segments > 0 {
			log.Printf("cold tier %s: %d segments, %d packets", dc.Tier.Dir, ts.Segments, ts.ColdPackets)
		}
	}
	lab, err := core.NewLab(core.Config{Name: "labd", Plan: plan, Store: st})
	if err != nil {
		return nil, err
	}
	// A recovered store already holds labeled traffic — develop straight
	// from it instead of re-collecting the boot scenario on top.
	if !recovered {
		benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: seed})
		amp := traffic.NewAttack(traffic.AttackConfig{
			Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(5),
			Start: 600 * time.Millisecond, Duration: 3 * time.Second, Rate: 800, Seed: seed + 1,
		})
		if _, err := lab.Collect(traffic.NewMerge(benign, amp)); err != nil {
			return nil, err
		}
	}
	dep, err := lab.Develop(core.DevelopConfig{Target: traffic.LabelDNSAmp, Seed: seed + 2})
	if err != nil {
		return nil, err
	}
	// Road-test the deployment on a short held-out replay before serving.
	// Besides a sanity shake-down, this populates the operational series
	// (dataplane verdicts, control-loop escalations/mitigations) so the
	// first METRICS scrape shows the deployed model working.
	loop, err := control.NewLoop(control.LoopConfig{
		Tier: control.TierControlPlane, Program: dep.AlertProgram,
		Model: dep.Extraction.Tree, Threshold: 0.9,
		Window: time.Second, MinEvidence: 30,
	})
	if err != nil {
		return nil, err
	}
	heldB := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 2 * time.Second, Seed: seed + 3})
	heldA := traffic.NewAttack(traffic.AttackConfig{
		Kind: traffic.LabelDNSAmp, Plan: plan, Victim: plan.Host(6),
		Start: 300 * time.Millisecond, Duration: 1500 * time.Millisecond, Rate: 800, Seed: seed + 4,
	})
	if _, err := loop.Replay(traffic.NewMerge(heldB, heldA)); err != nil {
		return nil, err
	}
	lc, err := newDaemonLifecycle(lab, dep, dc)
	if err != nil {
		return nil, err
	}
	s := &server{
		lab:       lab,
		dep:       dep,
		dataDir:   dc.DataDir,
		lifecycle: lc,
		idle:      2 * time.Minute,
		conns:     make(map[net.Conn]struct{}),
	}
	s.handlers = map[string]handler{
		"STATS":   (*server).cmdStats,
		"QUERY":   (*server).cmdQuery,
		"RULES":   (*server).cmdRules,
		"LABELS":  (*server).cmdLabels,
		"METRICS": (*server).cmdMetrics,
	}
	s.cmdCounters = make(map[string]*obs.Counter, len(s.handlers))
	for name := range s.handlers {
		s.cmdCounters[name] = obs.Default.Counter("campuslab_labd_commands_total", "cmd", name)
	}
	return s, nil
}

// newDaemonLifecycle wires the model state machine around the deployment:
// the live bundle is the extracted tree, retrains refit against the
// store's current labeled traffic, candidates must round-trip and compile
// before activation, and the last-known-good bundle persists in the data
// directory (when durable). /healthz reports its state; operators drive
// Tick from their own drift windows.
func newDaemonLifecycle(lab *core.Lab, dep *core.Deployment, dc daemonConfig) (*control.Lifecycle, error) {
	bundle, err := dep.Extraction.Tree.MarshalBinary()
	if err != nil {
		return nil, err
	}
	window := func() *features.Dataset {
		return features.FromPackets(lab.Store(), 1.0).BinaryRelabel(traffic.LabelDNSAmp)
	}
	lc, err := control.NewLifecycle(control.LifecycleConfig{
		Dir: dc.DataDir,
		Retrain: func() ([]byte, error) {
			tree, err := ml.FitTree(window(), 2, ml.TreeConfig{MaxDepth: 4, Seed: dc.Seed})
			if err != nil {
				return nil, err
			}
			return tree.MarshalBinary()
		},
		Validate: func(b []byte) (bool, error) {
			tree, err := ml.UnmarshalTree(b)
			if err != nil {
				return false, nil // malformed candidate: reject, not fatal
			}
			_, err = dataplane.Compile(tree, features.PacketSchema, dataplane.CompileConfig{
				Name: "labd-candidate", DropClasses: []int{1}, MinConfidence: 0.9,
			})
			return err == nil, nil
		},
		Activate: func([]byte) (*features.Dataset, error) { return window(), nil },
	}, bundle, 0)
	if err != nil {
		return nil, err
	}
	lc.SetClassifier(dep.Extraction.Tree)
	return lc, nil
}

// track registers a live connection for shutdown force-close; the returned
// func unregisters it.
func (s *server) track(conn net.Conn) func() {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}
}

// closeAll force-closes every tracked connection, returning how many.
func (s *server) closeAll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
	}
	return len(s.conns)
}

func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			obsBusyRejects.Inc()
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			fmt.Fprintln(conn, "ERR busy: connection limit reached")
			return
		}
	}
	defer s.track(conn)()
	obsConns.Inc()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	fmt.Fprintln(w, "campuslab labd ready; commands: STATS QUERY RULES LABELS METRICS QUIT")
	w.Flush()
	for {
		// Refresh the deadline per command, not per connection: a client
		// may stay connected indefinitely as long as it keeps talking.
		conn.SetReadDeadline(time.Now().Add(s.idle))
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		cmd, rest, _ := strings.Cut(line, " ")
		if strings.EqualFold(cmd, "QUIT") {
			fmt.Fprintln(w, "bye")
			w.Flush()
			return
		}
		s.dispatch(w, strings.ToUpper(cmd), rest)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch runs one command handler with panic containment: a bug in a
// handler costs this command an error line, not the daemon.
func (s *server) dispatch(w *bufio.Writer, cmd, rest string) {
	defer func() {
		if r := recover(); r != nil {
			log.Printf("panic in %s handler: %v", cmd, r)
			fmt.Fprintln(w, "ERR internal error")
		}
	}()
	switch h, ok := s.handlers[cmd]; {
	case ok:
		if c := s.cmdCounters[cmd]; c != nil {
			c.Inc()
		}
		h(s, w, rest)
	case cmd == "":
	default:
		obsUnknownCmds.Inc()
		fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
	}
}

func (s *server) cmdStats(w *bufio.Writer, _ string) {
	st := s.lab.Store().Stats()
	fmt.Fprintf(w, "packets=%d flows=%d events=%d data_bytes=%d index_bytes=%d span=%v",
		st.Packets, st.Flows, st.Events, st.DataBytes, st.IndexBytes, st.Span.Round(time.Millisecond))
	if st.Segments > 0 || st.ColdPackets > 0 {
		fmt.Fprintf(w, " cold_packets=%d cold_bytes=%d segments=%d",
			st.ColdPackets, st.ColdBytes, st.Segments)
	}
	if ts := s.lab.Store().TierStats(); ts.CacheHits > 0 || ts.CacheMisses > 0 || ts.CacheEntries > 0 {
		fmt.Fprintf(w, " cache_hits=%d cache_misses=%d cache_bytes=%d cache_entries=%d",
			ts.CacheHits, ts.CacheMisses, ts.CacheBytes, ts.CacheEntries)
	}
	fmt.Fprintln(w)
}

func (s *server) cmdQuery(w *bufio.Writer, rest string) {
	if rest == "" {
		fmt.Fprintln(w, "ERR QUERY needs an expression")
		return
	}
	matches, err := s.lab.Store().SelectExpr(rest, 10)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, "OK %d\n", len(matches))
	for i := range matches {
		fmt.Fprintf(w, "%v %v %dB\n", matches[i].TS.Round(time.Microsecond),
			matches[i].Summary.Tuple, matches[i].Summary.WireLen)
	}
}

func (s *server) cmdRules(w *bufio.Writer, _ string) {
	fmt.Fprintf(w, "OK %d\n", len(s.dep.Rules))
	for _, r := range s.dep.Rules {
		fmt.Fprintln(w, r)
	}
}

// cmdMetrics renders the process metrics snapshot: an "OK <n>" header
// (n = following lines) then the Prometheus text exposition.
func (s *server) cmdMetrics(w *bufio.Writer, _ string) {
	var buf bytes.Buffer
	if err := obs.Default.WriteText(&buf); err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, "OK %d\n", bytes.Count(buf.Bytes(), []byte("\n")))
	w.Write(buf.Bytes())
}

func (s *server) cmdLabels(w *bufio.Writer, _ string) {
	counts := s.lab.Store().LabelCounts()
	for l := traffic.LabelBenign; l < traffic.NumLabels; l++ {
		if counts[l] > 0 {
			fmt.Fprintf(w, "%s=%d\n", l, counts[l])
		}
	}
}
