package main

import (
	"context"
	"encoding/json"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"campuslab/internal/control"
	"campuslab/internal/core"
	"campuslab/internal/obs"
)

// registerStoreGauges exposes the lab store's size statistics as gauges,
// refreshed at scrape time via a registry collector so an idle daemon
// costs nothing between scrapes.
func registerStoreGauges(lab *core.Lab) {
	obs.Default.RegisterCollector(func(e *obs.Emitter) {
		st := lab.Store().Stats()
		e.Gauge("campuslab_labd_store_packets", float64(st.Packets))
		e.Gauge("campuslab_labd_store_flows", float64(st.Flows))
		e.Gauge("campuslab_labd_store_events", float64(st.Events))
		e.Gauge("campuslab_labd_store_data_bytes", float64(st.DataBytes))
		e.Gauge("campuslab_labd_store_index_bytes", float64(st.IndexBytes))
		e.Gauge("campuslab_labd_store_span_seconds", st.Span.Seconds())
		e.Gauge("campuslab_labd_store_cold_packets", float64(st.ColdPackets))
		e.Gauge("campuslab_labd_store_cold_bytes", float64(st.ColdBytes))
		e.Gauge("campuslab_labd_store_segments", float64(st.Segments))
	})
}

// healthz is the liveness/readiness report: overall status, the model
// lifecycle's state, and the WAL backlog a crash right now would replay.
// Status degrades to "degraded" when the lifecycle is off-healthy and to
// "critical" when the WAL is wedged (new data is not crash-safe).
type healthz struct {
	Status    string `json:"status"`
	Lifecycle string `json:"lifecycle"`
	Durable   bool   `json:"durable"`
	WAL       struct {
		Attached bool   `json:"attached"`
		Records  uint64 `json:"lag_records"`
		Bytes    uint64 `json:"lag_bytes"`
		Segments int    `json:"segments"`
		Error    string `json:"error,omitempty"`
	} `json:"wal"`
	Tier struct {
		Enabled      bool   `json:"enabled"`
		Segments     int    `json:"segments"`
		ColdPackets  uint64 `json:"cold_packets"`
		ColdBytes    uint64 `json:"cold_bytes"`
		Corrupt      uint64 `json:"corrupt_segments,omitempty"`
		CacheHits    uint64 `json:"cache_hits,omitempty"`
		CacheMisses  uint64 `json:"cache_misses,omitempty"`
		CacheBytes   int64  `json:"cache_bytes,omitempty"`
		CacheEntries int    `json:"cache_entries,omitempty"`
		Error        string `json:"error,omitempty"`
	} `json:"tier"`
	StorePackets uint64 `json:"store_packets"`
}

func (s *server) health() healthz {
	var h healthz
	h.Status = "ok"
	h.Lifecycle = s.lifecycle.State().String()
	if s.lifecycle.State() != control.StateHealthy {
		h.Status = "degraded"
	}
	h.Durable = s.dataDir != ""
	ws := s.lab.Store().WALStats()
	h.WAL.Attached = ws.Attached
	h.WAL.Records = ws.Records
	h.WAL.Bytes = ws.Bytes
	h.WAL.Segments = ws.Segments
	if ws.Err != nil {
		h.WAL.Error = ws.Err.Error()
		h.Status = "critical"
	}
	// Cold-tier health: a sticky segment error means some history is
	// unreadable — queries still serve everything else, so this degrades
	// rather than criticals.
	ts := s.lab.Store().TierStats()
	h.Tier.Enabled = ts.Enabled
	h.Tier.Segments = ts.Segments
	h.Tier.ColdPackets = ts.ColdPackets
	h.Tier.ColdBytes = ts.ColdBytes
	h.Tier.Corrupt = ts.CorruptSegments
	h.Tier.CacheHits = ts.CacheHits
	h.Tier.CacheMisses = ts.CacheMisses
	h.Tier.CacheBytes = ts.CacheBytes
	h.Tier.CacheEntries = ts.CacheEntries
	if ts.Err != nil {
		h.Tier.Error = ts.Err.Error()
		if h.Status == "ok" {
			h.Status = "degraded"
		}
	}
	h.StorePackets = s.lab.Store().Stats().Packets
	return h
}

// serveHTTP runs the diagnostics endpoint until ctx is cancelled:
// /metrics in Prometheus text format, /healthz as a JSON health report,
// /debug/pprof/* profiles, and /debug/trace as a JSON dump of recent
// slow-loop spans.
func serveHTTP(ctx context.Context, ln net.Listener, srv *server) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := srv.health()
		w.Header().Set("Content-Type", "application/json")
		if h.Status == "critical" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := obs.Default.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.Default.Tracer().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Printf("http: %v", err)
	}
}
