package main

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"campuslab/internal/capture"
)

func TestRunWritesValidPcapAndLabels(t *testing.T) {
	dir := t.TempDir()
	pcapPath := filepath.Join(dir, "out.pcap")
	csvPath := filepath.Join(dir, "labels.csv")
	err := run([]string{
		"-out", pcapPath, "-labels", csvPath,
		"-duration", "1s", "-fps", "40", "-hosts", "30", "-seed", "5",
		"-attack", "dns-amp", "-attack-start", "200ms", "-attack-rate", "300",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pcap must parse end to end.
	f, err := os.Open(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := capture.NewPcapReader(f)
	if err != nil {
		t.Fatal(err)
	}
	var rec capture.Record
	n := 0
	for {
		if err := r.Next(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		n++
	}
	if n < 100 {
		t.Fatalf("only %d records", n)
	}
	// Labels CSV aligns 1:1 with the pcap records.
	lf, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	sc := bufio.NewScanner(lf)
	lines := 0
	sawAttack := false
	for sc.Scan() {
		if lines > 0 && strings.Contains(sc.Text(), "dns-amp") {
			sawAttack = true
		}
		lines++
	}
	if lines != n+1 { // header + one line per record
		t.Errorf("csv lines = %d, want %d", lines, n+1)
	}
	if !sawAttack {
		t.Error("no attack labels in CSV")
	}
}

func TestRunRejectsUnknownAttack(t *testing.T) {
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "x.pcap"), "-attack", "nope"}); err == nil {
		t.Error("unknown attack accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) []byte {
		p := filepath.Join(dir, name)
		if err := run([]string{"-out", p, "-duration", "500ms", "-fps", "30", "-seed", "9"}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := mk("a.pcap"), mk("b.pcap")
	if string(a) != string(b) {
		t.Error("same seed produced different pcaps")
	}
}
