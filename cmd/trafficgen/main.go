// Command trafficgen writes synthetic campus traffic to a pcap file:
// benign campus workload with optional attack episodes, fully labeled in a
// sidecar CSV so downstream tools retain ground truth.
//
// With -stream the frames go to a fleet ingest server (labd
// -ingest-listen) instead of a pcap: the generator becomes a remote
// campus tap feeding a fleet node's store over the binary protocol.
//
// Usage:
//
//	trafficgen -out campus.pcap -duration 10s -fps 200 \
//	    -attack dns-amp -attack-rate 2000 -attack-start 2s -seed 7
//	trafficgen -stream 127.0.0.1:7079 -campus ucsb -duration 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"campuslab/internal/capture"
	"campuslab/internal/fleet"
	"campuslab/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trafficgen: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// run executes the generator with CLI args (separated from main for tests).
func run(args []string) error {
	fs := flag.NewFlagSet("trafficgen", flag.ContinueOnError)
	var (
		out         = fs.String("out", "campus.pcap", "output pcap path")
		labels      = fs.String("labels", "", "optional ground-truth CSV path (ts_ns,label,dir,len)")
		duration    = fs.Duration("duration", 10*time.Second, "scenario duration")
		fps         = fs.Float64("fps", 100, "benign flow arrivals per second")
		hosts       = fs.Int("hosts", 200, "hosts per department")
		seed        = fs.Int64("seed", 1, "deterministic seed")
		diurnal     = fs.Bool("diurnal", false, "apply the diurnal load curve")
		startHour   = fs.Int("start-hour", 14, "wall-clock hour at scenario start")
		attack      = fs.String("attack", "", "attack kind: dns-amp, syn-flood, port-scan, beacon (empty = none)")
		attackRate  = fs.Float64("attack-rate", 0, "attack rate (pps; beacons/hour for beacon)")
		attackStart = fs.Duration("attack-start", 2*time.Second, "attack episode start")
		attackDur   = fs.Duration("attack-duration", 0, "attack episode duration (default: half the scenario)")
		snaplen     = fs.Int("snaplen", 0, "pcap snap length (0 = full frames)")
		stream      = fs.String("stream", "", "stream frames to a fleet ingest server at this address instead of writing a pcap")
		campus      = fs.String("campus", "trafficgen", "campus name for the fleet stream (with -stream)")
		batchSize   = fs.Int("batch", 0, "frames per streamed batch (0 = default; with -stream)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	plan := traffic.DefaultPlan(*hosts)
	gens := []traffic.Generator{
		traffic.NewCampus(traffic.Profile{
			Plan: plan, FlowsPerSecond: *fps, Duration: *duration,
			Diurnal: *diurnal, StartHour: *startHour, Seed: *seed,
		}),
	}
	if *attack != "" {
		kind, err := traffic.ParseLabel(*attack)
		if err != nil {
			return fmt.Errorf("unknown attack %q (want dns-amp, syn-flood, port-scan or beacon)", *attack)
		}
		dur := *attackDur
		if dur <= 0 {
			dur = *duration / 2
		}
		gens = append(gens, traffic.NewAttack(traffic.AttackConfig{
			Kind: kind, Plan: plan, Start: *attackStart, Duration: dur,
			Rate: *attackRate, Seed: *seed + 1,
		}))
	}
	gen := traffic.NewMerge(gens...)

	if *stream != "" {
		c, err := fleet.DialCampus(fleet.ClientConfig{Addr: *stream, Campus: *campus})
		if err != nil {
			return err
		}
		defer c.Close()
		st, err := c.Stream(gen, *batchSize)
		if err != nil {
			return err
		}
		log.Printf("streamed %d frames to %s as campus %q (%d batches, %d stored, %d shed)",
			st.Frames, *stream, *campus, st.Batches, st.Stored, st.Shed)
		return nil
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := capture.NewPcapWriter(f, *snaplen)
	if err != nil {
		return err
	}

	var lf *os.File
	if *labels != "" {
		if lf, err = os.Create(*labels); err != nil {
			return err
		}
		defer lf.Close()
		fmt.Fprintln(lf, "ts_ns,label,dir,len")
	}

	var stats traffic.Stats
	var fr traffic.Frame
	for gen.Next(&fr) {
		rec := capture.Record{TS: fr.TS, Data: fr.Data}
		if err := w.Write(&rec); err != nil {
			return err
		}
		if lf != nil {
			fmt.Fprintf(lf, "%d,%s,%s,%d\n", fr.TS.Nanoseconds(), fr.Label, fr.Dir, len(fr.Data))
		}
		stats.Observe(&fr)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	log.Printf("wrote %d frames (%d bytes, %.2f Mbit/s offered) to %s",
		stats.Frames, stats.Bytes, stats.OfferedRate()/1e6, *out)
	for l := traffic.LabelBenign; l < traffic.NumLabels; l++ {
		if stats.ByLabel[l] > 0 {
			log.Printf("  %-10s %d frames", l, stats.ByLabel[l])
		}
	}
	return nil
}
