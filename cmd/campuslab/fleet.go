package main

import (
	"flag"
	"fmt"
	"net"
	"time"

	"campuslab/internal/core"
	"campuslab/internal/fleet"
	"campuslab/internal/traffic"
)

// cmdFleet runs one federated development round across three simulated
// campuses. By default each campus collects in process; -tcp instead
// stands up a fleet ingest server per campus on loopback and streams the
// same scenarios through the binary protocol — the round's output is
// byte-identical either way (the store's content is independent of how
// batches arrived).
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	tcp := fs.Bool("tcp", false, "stream campus traffic over loopback TCP instead of collecting in process")
	seed := fs.Int64("seed", 1601, "scenario seed base")
	trees := fs.Int("trees", 12, "per-campus forest size")
	depth := fs.Int("depth", 8, "per-campus forest depth")
	workers := fs.Int("workers", 0, "training worker count (0 = GOMAXPROCS; identical output either way)")
	showLog := fs.Bool("log", false, "print the coordinator's transition log")
	metricsOut := fs.String("metrics-out", "", "write a Prometheus-text metrics snapshot to this file after the run (- = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs := []core.CampusSpec{
		{Name: "ucsb", HostsPerDept: 30, FlowsPerSecond: 50, AttackRate: 500, StartHour: 14, Seed: *seed},
		{Name: "princeton", HostsPerDept: 45, FlowsPerSecond: 70, AttackRate: 300, StartHour: 17, Seed: *seed + 1},
		{Name: "columbia", HostsPerDept: 25, FlowsPerSecond: 40, AttackRate: 800, StartHour: 17, Seed: *seed + 2},
	}
	campuses, err := fleetFill(specs, *tcp, *workers)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := fleet.RunFederated(campuses, fleet.CoordinatorConfig{
		Target: traffic.LabelPortScan, ForestTrees: *trees, ForestDepth: *depth,
		Seed: *seed + 100, Workers: *workers,
	})
	if err != nil {
		return err
	}
	transport := "in-process"
	if *tcp {
		transport = "loopback TCP"
	}
	fmt.Printf("federated round over %d campuses (%s transport)\n\n", len(res.Campuses), transport)
	fmt.Printf("%-12s", "train\\test")
	for _, c := range res.Campuses {
		fmt.Printf("  %10s", c)
	}
	fmt.Println()
	for i, c := range res.Campuses {
		fmt.Printf("%-12s", c)
		for j := range res.Campuses {
			fmt.Printf("  %10.3f", res.Recall[i][j])
		}
		fmt.Println()
	}
	fmt.Printf("%-12s", "federated")
	for j := range res.Campuses {
		fmt.Printf("  %10.3f", res.FederatedRecall[j])
	}
	fmt.Println()
	fmt.Printf("%-12s", "pooled")
	for j := range res.Campuses {
		fmt.Printf("  %10.3f", res.PooledRecall[j])
	}
	fmt.Println()
	fmt.Printf("\nmerged ensemble: %d trees, %d bytes\n", res.Merged.NumTrees(), len(res.MergedBytes))
	if *showLog {
		fmt.Println()
		for _, line := range res.Log {
			fmt.Println("  " + line)
		}
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	return writeMetrics(*metricsOut)
}

// fleetFill builds each campus's store: locally via Lab.Collect, or by
// round-tripping the identical generator through a loopback fleet
// server.
func fleetFill(specs []core.CampusSpec, tcp bool, workers int) ([]fleet.Campus, error) {
	campuses := make([]fleet.Campus, len(specs))
	for i, spec := range specs {
		lab, gen, err := core.BuildCampusScenario(spec, traffic.LabelPortScan)
		if err != nil {
			return nil, fmt.Errorf("campus %s: %w", spec.Name, err)
		}
		if tcp {
			srv, err := fleet.NewServer(fleet.ServerConfig{Store: lab.Store(), Workers: workers})
			if err != nil {
				return nil, err
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			go srv.Serve(ln)
			cl, err := fleet.DialCampus(fleet.ClientConfig{Addr: ln.Addr().String(), Campus: spec.Name})
			if err != nil {
				return nil, err
			}
			if _, err := cl.Stream(gen, 0); err != nil {
				return nil, fmt.Errorf("campus %s: %w", spec.Name, err)
			}
			cl.Close()
			ln.Close()
			srv.Close()
		} else if _, err := lab.Collect(gen); err != nil {
			return nil, fmt.Errorf("campus %s: %w", spec.Name, err)
		}
		campuses[i] = fleet.Campus{Name: spec.Name, Store: lab.Store()}
	}
	return campuses, nil
}
