// Command campuslab is the experiment driver and data-store query tool.
//
// Usage:
//
//	campuslab experiment all            # run every experiment (E1-E15)
//	campuslab experiment E5 -md        # run one, render markdown
//	campuslab query -pcap f.pcap -expr 'dns && dns.qtype == ANY' [-limit 20]
//	campuslab develop                   # run the Figure 2 development loop and print the rules
//	campuslab fleet [-tcp]              # federated development round across 3 campuses
//	campuslab list                      # list experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"campuslab/internal/capture"
	"campuslab/internal/core"
	"campuslab/internal/datastore"
	"campuslab/internal/experiments"
	"campuslab/internal/obs"
	"campuslab/internal/traffic"
)

// writeMetrics dumps the process metrics snapshot (Prometheus text
// format) to path; "-" writes to stdout, "" is a no-op.
func writeMetrics(path string) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return obs.Default.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("campuslab: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "develop":
		err = cmdDevelop(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "list":
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: campuslab <command> [flags]

commands:
  experiment <id|all> [-md]   run experiments (see 'campuslab list')
  query -pcap F -expr E       query a pcap through the data store
  develop [-target L]        run the development loop, print operator rules
  fleet [-tcp]                federated development round across 3 campuses
  list                        list experiment ids`)
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	md := fs.Bool("md", false, "render markdown instead of aligned text")
	workers := fs.Int("workers", 0, "offline-loop worker count (0 = GOMAXPROCS, 1 = serial; identical tables either way)")
	metricsOut := fs.String("metrics-out", "", "write a Prometheus-text metrics snapshot to this file after the run (- = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments.SetWorkers(*workers)
	if fs.NArg() < 1 {
		return fmt.Errorf("experiment: need an id or 'all'")
	}
	var runners []experiments.Runner
	if fs.Arg(0) == "all" {
		runners = experiments.All()
	} else {
		r, ok := experiments.Find(fs.Arg(0))
		if !ok {
			return fmt.Errorf("experiment: unknown id %q (try 'campuslab list')", fs.Arg(0))
		}
		runners = []experiments.Runner{r}
	}
	for _, r := range runners {
		start := time.Now()
		tb, err := r.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		if *md {
			fmt.Print(tb.Markdown())
		} else {
			fmt.Println(tb.String())
		}
		log.Printf("%s completed in %v", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return writeMetrics(*metricsOut)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	pcapPath := fs.String("pcap", "", "pcap file to load")
	expr := fs.String("expr", "ip", "filter expression")
	limit := fs.Int("limit", 20, "max results to print (0 = all)")
	stats := fs.Bool("stats", false, "also print store statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pcapPath == "" {
		return fmt.Errorf("query: -pcap is required")
	}
	f, err := os.Open(*pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := capture.NewPcapReader(f)
	if err != nil {
		return err
	}
	st := datastore.New()
	var rec capture.Record
	batch := make([]capture.Record, 0, 4096)
	flush := func() error {
		_, err := st.AddRecords(batch, 0)
		batch = batch[:0]
		return err
	}
	for {
		if err := r.Next(&rec); err != nil {
			break
		}
		batch = append(batch, rec)
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	matches, err := st.SelectExpr(*expr, *limit)
	if err != nil {
		return err
	}
	total, err := st.CountExpr(*expr)
	if err != nil {
		return err
	}
	fmt.Printf("%d packets match %q (showing %d)\n", total, *expr, len(matches))
	for i := range matches {
		sp := &matches[i]
		fmt.Printf("  #%-7d %-12s %v (%dB)\n", sp.ID, sp.TS.Round(time.Microsecond), sp.Summary.Tuple, sp.Summary.WireLen)
	}
	if *stats {
		s := st.Stats()
		fmt.Printf("store: %d packets, %d flows, %s data + %s index over %v\n",
			s.Packets, s.Flows, sizeof(s.DataBytes), sizeof(s.IndexBytes), s.Span.Round(time.Millisecond))
	}
	return nil
}

func sizeof(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func cmdDevelop(args []string) error {
	fs := flag.NewFlagSet("develop", flag.ExitOnError)
	target := fs.String("target", "dns-amp", "attack class to learn")
	depth := fs.Int("depth", 4, "deployable tree depth")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "offline-loop worker count (0 = GOMAXPROCS, 1 = serial; identical output either way)")
	metricsOut := fs.String("metrics-out", "", "write a Prometheus-text metrics snapshot to this file after the run (- = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	label, err := traffic.ParseLabel(*target)
	if err != nil {
		return err
	}
	plan := traffic.DefaultPlan(40)
	lab, err := core.NewLab(core.Config{Name: "cli", Plan: plan, Workers: *workers})
	if err != nil {
		return err
	}
	benign := traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 60, Duration: 4 * time.Second, Seed: *seed})
	attack := traffic.NewAttack(traffic.AttackConfig{
		Kind: label, Plan: plan, Start: 600 * time.Millisecond,
		Duration: 3 * time.Second, Seed: *seed + 1,
	})
	if _, err := lab.Collect(traffic.NewMerge(benign, attack)); err != nil {
		return err
	}
	dep, err := lab.Develop(core.DevelopConfig{Target: label, DeployDepth: *depth, Seed: *seed + 2})
	if err != nil {
		return err
	}
	fmt.Printf("black box:   %d trees, %d nodes, test accuracy %.3f\n",
		dep.BlackBox.NumTrees(), dep.BlackBox.TotalNodes(), dep.BlackBoxTestAccuracy)
	fmt.Printf("deployable:  depth %d, %d nodes, fidelity %.3f, test accuracy %.3f\n",
		dep.Extraction.Tree.Depth(), dep.Extraction.Tree.NumNodes(), dep.Extraction.Fidelity, dep.TestAccuracy)
	fmt.Printf("compiled:    %d rules, %d TCAM entries\n\n", len(dep.DropProgram.Rules), dep.DropProgram.TCAMCost())
	fmt.Println("operator rules (road-map step iv):")
	for _, r := range dep.Rules {
		fmt.Println("  " + r)
	}
	return writeMetrics(*metricsOut)
}
