package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"campuslab/internal/capture"
	"campuslab/internal/traffic"
)

// writeTestPcap generates a small labeled pcap for query tests.
func writeTestPcap(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "q.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := capture.NewPcapWriter(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := traffic.DefaultPlan(20)
	gen := traffic.NewMerge(
		traffic.NewCampus(traffic.Profile{Plan: plan, FlowsPerSecond: 40, Duration: time.Second, Seed: 3}),
		traffic.NewAttack(traffic.AttackConfig{Kind: traffic.LabelDNSAmp, Plan: plan, Duration: time.Second, Rate: 200, Seed: 4}),
	)
	var fr traffic.Frame
	for gen.Next(&fr) {
		rec := capture.Record{TS: fr.TS, Data: fr.Data}
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdQuery(t *testing.T) {
	path := writeTestPcap(t)
	if err := cmdQuery([]string{"-pcap", path, "-expr", "dns && dns.qtype == ANY", "-limit", "5", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdQueryErrors(t *testing.T) {
	if err := cmdQuery([]string{"-expr", "dns"}); err == nil {
		t.Error("missing -pcap accepted")
	}
	if err := cmdQuery([]string{"-pcap", "/no/such/file.pcap"}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTestPcap(t)
	if err := cmdQuery([]string{"-pcap", path, "-expr", "bogus =="}); err == nil {
		t.Error("bad expression accepted")
	}
}

func TestCmdExperimentUnknown(t *testing.T) {
	if err := cmdExperiment([]string{"E999"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := cmdExperiment([]string{}); err == nil {
		t.Error("missing id accepted")
	}
}

func TestCmdExperimentRunsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	if err := cmdExperiment([]string{"-md", "E8"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdDevelop(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	if err := cmdDevelop([]string{"-target", "dns-amp", "-depth", "3", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDevelop([]string{"-target", "not-a-label"}); err == nil {
		t.Error("bad target accepted")
	}
}

func TestSizeof(t *testing.T) {
	cases := map[uint64]string{
		100:     "100B",
		2 << 10: "2.0KiB",
		3 << 20: "3.0MiB",
		4 << 30: "4.0GiB",
	}
	for in, want := range cases {
		if got := sizeof(in); got != want {
			t.Errorf("sizeof(%d) = %q, want %q", in, got, want)
		}
	}
}
