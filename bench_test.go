// Package campuslab's root benchmarks regenerate every experiment in the
// reproduction index (DESIGN.md §3): one benchmark per table, E1-E15.
// Each iteration runs the full experiment; results print the same rows the
// tables in EXPERIMENTS.md record. Run with:
//
//	go test -bench=. -benchmem
package campuslab_test

import (
	"testing"

	"campuslab/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration and
// reports the table size as a sanity signal.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		tb, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tb.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkE1_Pipeline(b *testing.B)           { runExperiment(b, "E1") }
func BenchmarkE2_ControlLoopTiers(b *testing.B)   { runExperiment(b, "E2") }
func BenchmarkE3_CaptureRate(b *testing.B)        { runExperiment(b, "E3") }
func BenchmarkE4_TaskScaling(b *testing.B)        { runExperiment(b, "E4") }
func BenchmarkE5_DNSAmpMitigation(b *testing.B)   { runExperiment(b, "E5") }
func BenchmarkE6_ModelExtraction(b *testing.B)    { runExperiment(b, "E6") }
func BenchmarkE7_StoreRetention(b *testing.B)     { runExperiment(b, "E7") }
func BenchmarkE8_Anonymization(b *testing.B)      { runExperiment(b, "E8") }
func BenchmarkE9_CrossCampus(b *testing.B)        { runExperiment(b, "E9") }
func BenchmarkE10_TopDownVsBottomUp(b *testing.B) { runExperiment(b, "E10") }
func BenchmarkE11_CanaryRollback(b *testing.B)    { runExperiment(b, "E11") }
func BenchmarkE12_Compile(b *testing.B)           { runExperiment(b, "E12") }
func BenchmarkE13_MultiTask(b *testing.B)         { runExperiment(b, "E13") }
func BenchmarkE14_ChaosLoop(b *testing.B)         { runExperiment(b, "E14") }
func BenchmarkE15_EnsembleFrontier(b *testing.B)  { runExperiment(b, "E15") }
